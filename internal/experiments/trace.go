// Tracing hook: mfc-experiments -trace routes every catalog run's event
// stream into an obs.Tracer, one labeled trace process per mfc.Run, so a
// single experiment can be opened in Perfetto for a virtual-time deep
// dive.
package experiments

import "mfc"

// traceFactory, when set via EnableTrace, supplies a fresh observer for
// every run the catalog issues; the label names the run's trace process.
var traceFactory func(label string) mfc.Observer

// EnableTrace attaches factory to every subsequent experiment run (nil
// disables). It mutates package state: set it once, before running
// experiments, never concurrently with them.
func EnableTrace(factory func(label string) mfc.Observer) { traceFactory = factory }

// traceOpt is the per-call-site hook: a labeled observer option when
// tracing is enabled, a no-op option otherwise.
func traceOpt(label string) mfc.RunOption {
	if traceFactory == nil {
		return mfc.WithObserver(nil) // addObserver ignores nil: no-op
	}
	return mfc.WithObserver(traceFactory(label))
}
