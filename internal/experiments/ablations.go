package experiments

import (
	"context"
	"fmt"
	"time"

	"mfc"
	"mfc/internal/content"
	"mfc/internal/core"
	"mfc/internal/netsim"
	"mfc/internal/websim"
)

// ---------------------------------------------------------------------------
// Ablation: the check phase. Without it, a single noisy epoch can stop a
// stage early; with it, stochastic crossings must re-confirm at N-1/N/N+1.
// ---------------------------------------------------------------------------

// CheckPhaseResult compares stopping decisions with and without the check
// phase over several seeds against a well-provisioned target where every
// stop is by construction a false positive.
type CheckPhaseResult struct {
	Seeds          int
	FalseStopsWith int // stops reported with the check phase on
	FalseStopsSans int // stops reported with it off
}

// AblationCheckPhase runs the Base stage repeatedly against a server that
// never degrades under the MFC load itself but carries bursty background
// traffic: an epoch colliding with a burst shows a transient jump. The
// check phase re-tests (N-1, N, N+1) and the burst is gone; without it,
// the transient is accepted as a constraint.
func AblationCheckPhase(seeds int) (*CheckPhaseResult, error) {
	res := &CheckPhaseResult{Seeds: seeds}
	// Job i is (seed i/2, check i%2==0): every (seed, variant) pair is an
	// independent simulation, counted in index order after the pool drains.
	stops, err := parMap(seeds*2, func(i int) (int, error) {
		cfg := core.DefaultConfig()
		cfg.Threshold = 100 * time.Millisecond
		cfg.Step = 5
		cfg.MaxCrowd = 50
		cfg.MinClients = 50
		cfg.CheckPhase = i%2 == 0

		return noisyBaseRun(cfg, int64(1000+i/2))
	})
	if err != nil {
		return nil, err
	}
	for i, stop := range stops {
		if stop > 0 {
			if i%2 == 0 {
				res.FalseStopsWith++
			} else {
				res.FalseStopsSans++
			}
		}
	}
	return res, nil
}

// noisyBaseRun runs one Base stage against a strong target under bursty
// background traffic and returns the stopping crowd (0 = NoStop; any stop
// is false by construction — the MFC crowd alone costs <20ms).
func noisyBaseRun(cfg core.Config, seed int64) (int, error) {
	srvCfg := websim.Config{
		Name:            "burst-target",
		AccessBandwidth: 1.25e9,
		Workers:         4096,
		Backlog:         4096,
		Cores:           4,
		ParseCPU:        1500 * time.Microsecond,
	}
	run, err := mfc.Run(context.Background(), mfc.SimTarget{
		Server: srvCfg, Site: websim.QTSite(7),
		Background: websim.BackgroundConfig{BurstSize: 1200, BurstEvery: 12 * time.Second},
		Clients:    60, Seed: seed, NoAccessLog: true, MonitorPeriod: -1,
	}, cfg, mfc.WithStage(core.StageBase),
		traceOpt(fmt.Sprintf("ablation-check seed=%d", seed)))
	if err != nil {
		return 0, err
	}
	if sr := run.Result.Stages[0]; sr.Verdict == core.VerdictStopped {
		return sr.StoppingCrowd, nil
	}
	return 0, nil
}

// Render prints the comparison.
func (r *CheckPhaseResult) Render() string {
	t := newTable(
		"Ablation: check phase (target never degrades; every reported stop is a false positive)",
		"variant", "false stops", "runs")
	t.addf("check phase ON|%d|%d", r.FalseStopsWith, r.Seeds)
	t.addf("check phase OFF|%d|%d", r.FalseStopsSans, r.Seeds)
	return t.String()
}

// ---------------------------------------------------------------------------
// Ablation: median vs 90th percentile for the Large Object stage when a
// majority of clients share a bottleneck link far from the target (§2.2.3).
// ---------------------------------------------------------------------------

// QuantileAblationResult compares the two detection quantiles under a
// shared middle bottleneck covering 55% of clients.
type QuantileAblationResult struct {
	// MedianStop and Q90Stop are the stopping crowds (0 = NoStop). The
	// target's own link is unconstrained, so a stop blames the target for
	// congestion it did not cause.
	MedianStop int
	Q90Stop    int
}

// AblationQuantile demonstrates why the Large Object stage requires 90% of
// clients to observe the degradation: with 55% of clients behind one
// remote bottleneck, the median rule (50% must observe) crosses the
// threshold and blames the target falsely, while the 90% rule does not.
func AblationQuantile(seed int64) (*QuantileAblationResult, error) {
	quantiles := []float64{0.5, 0.9}
	stops, err := parMap(len(quantiles), func(qi int) (int, error) {
		q := quantiles[qi]
		cfg := core.DefaultConfig()
		cfg.Step = 5
		cfg.MaxCrowd = 50
		cfg.MinClients = 50
		cfg.LargeObserveFrac = q

		// Target with an over-provisioned pipe: it is never the bottleneck;
		// 55% of clients share a thin middle link several hops away.
		run, err := mfc.Run(context.Background(), mfc.SimTarget{
			Server: websim.QTNPConfig(), Site: websim.QTSite(7), Seed: seed,
			NoAccessLog: true, MonitorPeriod: -1,
			Specs: func(env *netsim.Env) []core.SimClientSpec {
				middle := env.NewLink("shared-middle", 2.5e6)
				specs := core.PlanetLabSpecs(env, 60)
				for i := range specs {
					if i%100 < 55 {
						specs[i].Middle = middle
					}
				}
				return specs
			},
		}, cfg, mfc.WithStage(core.StageLargeObject),
			traceOpt(fmt.Sprintf("ablation-quantile q=%g", q)))
		if err != nil {
			return 0, err
		}
		if sr := run.Result.Stages[0]; sr.Verdict == core.VerdictStopped {
			return sr.StoppingCrowd, nil
		}
		return 0, nil
	})
	if err != nil {
		return nil, err
	}
	return &QuantileAblationResult{MedianStop: stops[0], Q90Stop: stops[1]}, nil
}

// Render prints the quantile comparison.
func (r *QuantileAblationResult) Render() string {
	t := newTable(
		"Ablation: Large Object observe-fraction (55% of clients share a remote bottleneck; the target link is clean)",
		"rule", "verdict")
	t.addf("50%% must observe (median)|%s", stopStr(r.MedianStop > 0, r.MedianStop, 50))
	t.addf("90%% must observe (paper)|%s", stopStr(r.Q90Stop > 0, r.Q90Stop, 50))
	return t.String()
}

// ---------------------------------------------------------------------------
// Ablation: crowd step size — intrusiveness (total requests) vs precision.
// ---------------------------------------------------------------------------

// StepPoint is one step size's outcome.
type StepPoint struct {
	Step          int
	StoppingCrowd int
	TotalRequests int
	Epochs        int
}

// StepAblationResult sweeps the ramp increment.
type StepAblationResult struct{ Points []StepPoint }

// AblationStep sweeps the §2.2.3 crowd increment (the paper uses 5 or 10)
// against QTNP's Base stage: larger steps find a coarser stopping size with
// fewer total requests.
func AblationStep(seed int64) (*StepAblationResult, error) {
	steps := []int{2, 5, 10, 15}
	points, err := parMap(len(steps), func(i int) (StepPoint, error) {
		cfg := core.DefaultConfig()
		cfg.Step = steps[i]
		cfg.MaxCrowd = 60
		cfg.MinClients = 50

		out, _, err := runSite(websim.QTNPConfig(), websim.QTSite(7),
			websim.BackgroundConfig{}, singleStage(cfg), 70, seed)
		if err != nil {
			return StepPoint{}, err
		}
		sr := out.Stage(core.StageBase)
		return StepPoint{
			Step:          steps[i],
			StoppingCrowd: sr.StoppingCrowd,
			TotalRequests: sr.TotalRequests,
			Epochs:        len(sr.Epochs),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &StepAblationResult{Points: points}, nil
}

// singleStage returns cfg unchanged; runSite runs all three stages, so the
// step ablation reads only the Base stage out of the result. Kept as a
// named helper for clarity at call sites.
func singleStage(cfg core.Config) core.Config { return cfg }

// Render prints the sweep.
func (r *StepAblationResult) Render() string {
	t := newTable(
		"Ablation: crowd step (precision of the stopping size vs intrusiveness)",
		"step", "Base stop", "Base requests", "epochs")
	for _, p := range r.Points {
		t.addf("%d|%d|%d|%d", p.Step, p.StoppingCrowd, p.TotalRequests, p.Epochs)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Extension: staggered MFC (§6) — a server that keels over under tight
// synchronization can be fine when the same volume arrives spread out.
// ---------------------------------------------------------------------------

// StaggerPoint is one inter-arrival spacing's outcome.
type StaggerPoint struct {
	Stagger       time.Duration
	StoppingCrowd int // 0 = NoStop
	MaxMedian     time.Duration
}

// StaggerResult sweeps arrival spacing on a weak target.
type StaggerResult struct{ Points []StaggerPoint }

// ExtensionStaggered runs the Base stage against the weak Univ-1 server
// with increasing inter-arrival spacing: synchronized arrivals stop early,
// staggered arrivals are absorbed.
func ExtensionStaggered(seed int64) (*StaggerResult, error) {
	staggers := []time.Duration{0, 20 * time.Millisecond, 100 * time.Millisecond, 400 * time.Millisecond}
	points, err := parMap(len(staggers), func(i int) (StaggerPoint, error) {
		cfg := core.DefaultConfig()
		cfg.Step = 5
		cfg.MaxCrowd = 50
		cfg.MinClients = 50
		cfg.Stagger = staggers[i]

		out, _, err := runSite(websim.Univ1Config(), websim.Univ1Site(5),
			websim.BackgroundConfig{}, cfg, 65, seed)
		if err != nil {
			return StaggerPoint{}, err
		}
		sr := out.Stage(core.StageBase)
		var maxMed time.Duration
		for _, e := range sr.Epochs {
			if e.NormMedian > maxMed {
				maxMed = e.NormMedian
			}
		}
		stop := 0
		if sr.Verdict == core.VerdictStopped {
			stop = sr.StoppingCrowd
		}
		return StaggerPoint{Stagger: staggers[i], StoppingCrowd: stop, MaxMedian: maxMed}, nil
	})
	if err != nil {
		return nil, err
	}
	return &StaggerResult{Points: points}, nil
}

// Render prints the stagger sweep.
func (r *StaggerResult) Render() string {
	t := newTable(
		"Extension: staggered MFC on a weak server (paper §6: servers fine under staggered load handle medium/low-volume crowds)",
		"inter-arrival", "Base stop", "max median increase (ms)")
	for _, p := range r.Points {
		label := "synchronized"
		if p.Stagger > 0 {
			label = p.Stagger.String()
		}
		t.addf("%s|%s|%s", label, stopStr(p.StoppingCrowd > 0, p.StoppingCrowd, 50), ms(p.MaxMedian))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Extension: MFC-mr multiplier sweep (§4.1).
// ---------------------------------------------------------------------------

// MRPoint is one multiplier's outcome.
type MRPoint struct {
	Multiplier   int
	StopClients  int // stopping crowd in clients (0 = NoStop)
	StopRequests int // in simultaneous requests
}

// MRResult sweeps the parallel-connection count.
type MRResult struct{ Points []MRPoint }

// ExtensionMultiRequest sweeps MFC-mr against QTNP's Base stage: the
// stopping size in *clients* shrinks toward the MinSignificant floor while
// the server-side load at the stop is governed by simultaneous requests —
// MFC-mr reaches a given request volume with proportionally fewer client
// machines, which is exactly why the paper uses it on QTNP and QTP.
func ExtensionMultiRequest(seed int64) (*MRResult, error) {
	multipliers := []int{1, 2, 5}
	points, err := parMap(len(multipliers), func(i int) (MRPoint, error) {
		m := multipliers[i]
		cfg := core.DefaultConfig()
		cfg.Step = 2
		cfg.MaxCrowd = 60
		cfg.MinClients = 50
		cfg.MultiRequest = m

		out, _, err := runSite(websim.QTNPConfig(), websim.QTSite(7),
			websim.BackgroundConfig{}, cfg, 70, seed)
		if err != nil {
			return MRPoint{}, err
		}
		sr := out.Stage(core.StageBase)
		p := MRPoint{Multiplier: m}
		if sr.Verdict == core.VerdictStopped {
			p.StopClients = sr.StoppingCrowd
			p.StopRequests = sr.StoppingCrowd * m
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return &MRResult{Points: points}, nil
}

// Render prints the sweep.
func (r *MRResult) Render() string {
	t := newTable(
		"Extension: MFC-mr multiplier (stopping size in requests is invariant; in clients it shrinks ~1/m)",
		"parallel reqs/client", "stop (clients)", "stop (requests)")
	for _, p := range r.Points {
		t.addf("%d|%s|%s", p.Multiplier,
			stopStr(p.StopClients > 0, p.StopClients, 60),
			stopStr(p.StopRequests > 0, p.StopRequests, 60*p.Multiplier))
	}
	return t.String()
}

// DDoSReport runs the full MFC against a target and renders the §6
// vulnerability reading.
func DDoSReport(srvCfg websim.Config, site *content.Site, seed int64) (string, error) {
	cfg := core.DefaultConfig()
	cfg.Step = 5
	cfg.MaxCrowd = 50
	cfg.MinClients = 50
	out, _, err := runSite(srvCfg, site, websim.BackgroundConfig{}, cfg, 65, seed)
	if err != nil {
		return "", err
	}
	a := core.Assess(out)
	return fmt.Sprintf("%s\n%s", out, a), nil
}
