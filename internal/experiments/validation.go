package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mfc"
	"mfc/internal/core"
	"mfc/internal/stats"
	"mfc/internal/websim"
)

// ---------------------------------------------------------------------------
// Figure 3 — synchronization: arrival times at the target for one 45-client
// crowd.
// ---------------------------------------------------------------------------

// Figure3Result holds the per-request arrival offsets of a synchronized
// crowd, relative to the earliest arrival.
type Figure3Result struct {
	Crowd    int
	Offsets  []time.Duration // sorted ascending
	Spread70 time.Duration   // width of the middle 70%
	Spread90 time.Duration   // width of the middle 90%
}

// Figure3 runs a single 45-client synchronized epoch against the validation
// server with PlanetLab-like clients and reads the target's access log,
// exactly as §3.1 does.
func Figure3(seed int64) (*Figure3Result, error) {
	const crowd = 45
	srvCfg := websim.ValidationConfig(websim.LinearModel{Slope: 0})
	site := websim.ValidationSite()

	cfg := core.DefaultConfig()
	cfg.Step = crowd
	cfg.MaxCrowd = crowd
	cfg.MinClients = crowd
	cfg.Threshold = time.Hour // never stop: one clean epoch
	run, err := mfc.Run(context.Background(), mfc.SimTarget{
		Server: srvCfg, Site: site, Clients: 65, Seed: seed, MonitorPeriod: -1,
	}, cfg, mfc.WithStage(core.StageBase),
		traceOpt(fmt.Sprintf("figure3 seed=%d", seed)))
	if err != nil {
		return nil, err
	}
	sr := run.Result.Stages[0]
	if len(sr.Epochs) == 0 {
		return nil, fmt.Errorf("experiments: figure3 produced no epochs")
	}

	var arrivals []time.Duration
	for _, a := range run.Server.AccessLog() {
		if a.Tag == "mfc" {
			arrivals = append(arrivals, a.At)
		}
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("experiments: figure3 logged no MFC arrivals")
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })
	res := &Figure3Result{Crowd: crowd}
	first := arrivals[0]
	for _, a := range arrivals {
		res.Offsets = append(res.Offsets, a-first)
	}
	res.Spread70 = spreadMiddle(res.Offsets, 0.70)
	res.Spread90 = spreadMiddle(res.Offsets, 0.90)
	return res, nil
}

func spreadMiddle(sorted []time.Duration, frac float64) time.Duration {
	lo := stats.QuantileDuration(sorted, (1-frac)/2)
	hi := stats.QuantileDuration(sorted, 1-(1-frac)/2)
	return hi - lo
}

// Render prints the arrival series (client index vs arrival offset).
func (r *Figure3Result) Render() string {
	t := newTable(
		fmt.Sprintf("Figure 3: request arrival times at target, crowd=%d (paper: 70%% within 5ms, 90%% within 30ms)", r.Crowd),
		"req#", "arrival offset (ms)")
	for i, off := range r.Offsets {
		t.addf("%d|%s", i+1, ms(off))
	}
	t.addf("spread(70%%)|%s", ms(r.Spread70))
	t.addf("spread(90%%)|%s", ms(r.Spread90))
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 4 — tracking synthetic response-time functions.
// ---------------------------------------------------------------------------

// TrackPoint is one crowd's ideal vs. measured normalized response time.
type TrackPoint struct {
	Crowd    int
	Ideal    time.Duration
	Measured time.Duration
}

// Figure4Result holds one model's tracking series.
type Figure4Result struct {
	Model  string
	Points []TrackPoint
	// MaxAbsErr and MeanAbsErr summarize tracking fidelity.
	MaxAbsErr  time.Duration
	MeanAbsErr time.Duration
}

// Figure4 measures how faithfully the MFC median tracks a synthetic
// response-time model as the crowd grows 5..60 (§3.1, Figure 4).
func Figure4(model websim.SyntheticModel, seed int64) (*Figure4Result, error) {
	cfg := core.DefaultConfig()
	cfg.Step = 5
	cfg.MaxCrowd = 60
	cfg.MinClients = 50
	cfg.Threshold = time.Hour // trace the whole curve
	run, err := mfc.Run(context.Background(), mfc.SimTarget{
		Server: websim.ValidationConfig(model), Site: websim.ValidationSite(),
		Clients: 65, Seed: seed, NoAccessLog: true, MonitorPeriod: -1,
	}, cfg, mfc.WithStage(core.StageBase),
		traceOpt(fmt.Sprintf("figure4 seed=%d", seed)))
	if err != nil {
		return nil, err
	}
	sr := run.Result.Stages[0]

	res := &Figure4Result{Model: model.Name()}
	var totalErr time.Duration
	crowds, medians := sr.CurveMedians()
	for i, n := range crowds {
		ideal := model.Delay(n)
		p := TrackPoint{Crowd: n, Ideal: ideal, Measured: medians[i]}
		res.Points = append(res.Points, p)
		err := p.Measured - p.Ideal
		if err < 0 {
			err = -err
		}
		totalErr += err
		if err > res.MaxAbsErr {
			res.MaxAbsErr = err
		}
	}
	if len(res.Points) > 0 {
		res.MeanAbsErr = totalErr / time.Duration(len(res.Points))
	}
	return res, nil
}

// Render prints the ideal-vs-measured series.
func (r *Figure4Result) Render() string {
	t := newTable(
		fmt.Sprintf("Figure 4 (%s): median normalized response time vs crowd size", r.Model),
		"crowd", "ideal (ms)", "measured (ms)")
	for _, p := range r.Points {
		t.addf("%d|%s|%s", p.Crowd, ms(p.Ideal), ms(p.Measured))
	}
	t.addf("mean abs err|%s|", ms(r.MeanAbsErr))
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 5 — Large Object stage on the lab server: response time and
// network usage vs crowd size, with CPU/memory/disk staying idle.
// ---------------------------------------------------------------------------

// ResourcePoint is one crowd's client-visible and server-side readings.
type ResourcePoint struct {
	Crowd      int
	MedianResp time.Duration
	NetKBs     float64 // outbound KB/s during the epoch window
	CPUUtil    float64 // 0..1
	MemMB      float64
	DiskUtil   float64
}

// Figure5Result is the lab Large Object run.
type Figure5Result struct {
	Points []ResourcePoint
}

// Figure5 reproduces the §3.2 large-object workload: 50 LAN clients fetch
// the same 100 KB object over a 100 Mbit access link.
func Figure5(seed int64) (*Figure5Result, error) {
	run, err := labRun(core.StageLargeObject, websim.BackendMongrel, seed)
	if err != nil {
		return nil, err
	}
	return &Figure5Result{Points: run}, nil
}

// Render prints the two Figure 5 series plus the idle resources.
func (r *Figure5Result) Render() string {
	t := newTable(
		"Figure 5: same 100KB large object (paper: response time rises to ~400ms at 50; CPU/mem/disk negligible)",
		"crowd", "median resp (ms)", "net (KB/s)", "cpu", "mem (MB)", "disk")
	for _, p := range r.Points {
		t.addf("%d|%s|%.0f|%.2f|%.0f|%.2f", p.Crowd, ms(p.MedianResp), p.NetKBs, p.CPUUtil, p.MemMB, p.DiskUtil)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 6 — Small Query stage under FastCGI (memory blow-up) vs Mongrel
// (flat).
// ---------------------------------------------------------------------------

// Figure6Result contrasts the two backends.
type Figure6Result struct {
	FastCGI []ResourcePoint
	Mongrel []ResourcePoint
}

// Figure6 reproduces the §3.2 small-query workload under both backends.
// The two lab runs are independent simulations and share the worker pool.
func Figure6(seed int64) (*Figure6Result, error) {
	backends := []websim.Backend{websim.BackendFastCGI, websim.BackendMongrel}
	runs, err := parMap(len(backends), func(i int) ([]ResourcePoint, error) {
		return labRun(core.StageSmallQuery, backends[i], seed)
	})
	if err != nil {
		return nil, err
	}
	return &Figure6Result{FastCGI: runs[0], Mongrel: runs[1]}, nil
}

// Render prints both backends' series.
func (r *Figure6Result) Render() string {
	t := newTable(
		"Figure 6: small query via FastCGI (paper: memory grows ~linearly, response blows up) vs Mongrel (flat <10ms)",
		"crowd", "fcgi resp (ms)", "fcgi cpu", "fcgi mem (MB)", "mongrel resp (ms)", "mongrel mem (MB)")
	for i := range r.FastCGI {
		f := r.FastCGI[i]
		var m ResourcePoint
		if i < len(r.Mongrel) {
			m = r.Mongrel[i]
		}
		t.addf("%d|%s|%.2f|%.0f|%s|%.0f", f.Crowd, ms(f.MedianResp), f.CPUUtil, f.MemMB, ms(m.MedianResp), m.MemMB)
	}
	return t.String()
}

// labRun executes one §3.2 lab stage (LAN clients, max 50, full curve) and
// correlates each epoch with the atop-style monitor window.
func labRun(stage core.Stage, backend websim.Backend, seed int64) ([]ResourcePoint, error) {
	cfg := core.DefaultConfig()
	cfg.Step = 5
	cfg.MaxCrowd = 50
	cfg.MinClients = 50
	cfg.Threshold = time.Hour
	run, err := mfc.Run(context.Background(), mfc.SimTarget{
		Server: websim.LabConfig(backend), Site: websim.LabSite(),
		Clients: 55, LAN: true, Seed: seed, NoAccessLog: true,
		MonitorPeriod: 100 * time.Millisecond,
	}, cfg, mfc.WithStage(stage),
		traceOpt(fmt.Sprintf("lab %v backend=%v seed=%d", stage, backend, seed)))
	if err != nil {
		return nil, err
	}
	sr := run.Result.Stages[0]

	var out []ResourcePoint
	for _, e := range sr.Epochs {
		if e.Kind != core.EpochRamp {
			continue
		}
		w := run.Monitor.Window(e.ArriveAt-time.Second, e.ArriveAt+3*time.Second)
		out = append(out, ResourcePoint{
			Crowd:      e.Crowd,
			MedianResp: e.NormMedian,
			NetKBs:     w.NetBytesPerSec / 1024,
			CPUUtil:    w.CPUUtil,
			MemMB:      float64(w.ResidentBytes) / (1 << 20),
			DiskUtil:   w.DiskUtil,
		})
	}
	return out, nil
}
