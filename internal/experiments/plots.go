package experiments

import (
	"fmt"
	"time"

	"mfc/internal/plot"
)

// Plot methods render the figure-shaped experiments as ASCII charts, the
// closest a terminal gets to the paper's actual figures.

// Plot draws the ideal-vs-measured tracking curves (Figure 4).
func (r *Figure4Result) Plot() string {
	var x, ideal, measured []float64
	for _, p := range r.Points {
		x = append(x, float64(p.Crowd))
		ideal = append(ideal, float64(p.Ideal)/float64(time.Millisecond))
		measured = append(measured, float64(p.Measured)/float64(time.Millisecond))
	}
	c := &plot.Chart{
		Title:  fmt.Sprintf("Figure 4 (%s): tracking the synthetic model", r.Model),
		XLabel: "crowd size",
		YLabel: "median increase (ms)",
		X:      x,
		Series: []plot.Series{{Name: "ideal", Y: ideal}, {Name: "measured", Y: measured}},
	}
	return c.Render()
}

// Plot draws the Figure 5 response-time curve.
func (r *Figure5Result) Plot() string {
	var x, resp []float64
	for _, p := range r.Points {
		x = append(x, float64(p.Crowd))
		resp = append(resp, float64(p.MedianResp)/float64(time.Millisecond))
	}
	c := &plot.Chart{
		Title:  "Figure 5: Large Object median response vs crowd",
		XLabel: "crowd size",
		YLabel: "ms",
		X:      x,
		Series: []plot.Series{{Name: "median response", Y: resp}},
	}
	return c.Render()
}

// Plot draws Figure 6's FastCGI-vs-Mongrel response curves and the FastCGI
// memory climb.
func (r *Figure6Result) Plot() string {
	var x, fc, mg, mem []float64
	for i, p := range r.FastCGI {
		x = append(x, float64(p.Crowd))
		fc = append(fc, float64(p.MedianResp)/float64(time.Millisecond))
		mem = append(mem, p.MemMB)
		if i < len(r.Mongrel) {
			mg = append(mg, float64(r.Mongrel[i].MedianResp)/float64(time.Millisecond))
		}
	}
	resp := &plot.Chart{
		Title:  "Figure 6: Small Query median response vs crowd",
		XLabel: "crowd size",
		YLabel: "ms",
		X:      x,
		Series: []plot.Series{{Name: "fastcgi", Y: fc}, {Name: "mongrel", Y: mg}},
	}
	memc := &plot.Chart{
		Title:  "Figure 6: FastCGI resident memory vs crowd (RAM = 1024 MB)",
		XLabel: "crowd size",
		YLabel: "MB",
		X:      x,
		Series: []plot.Series{{Name: "resident", Y: mem}},
	}
	return resp.Render() + "\n" + memc.Render()
}

// Plot draws a population figure as stacked bars per rank band.
func (r *PopulationResult) Plot() string {
	b := &plot.Bars{
		Title:  fmt.Sprintf("Figure %s: %v-stage stopping sizes (share of sites)", figNum(r.Stage), r.Stage),
		Legend: bucketLabels,
	}
	for _, h := range r.Bands {
		b.Labels = append(b.Labels, h.Band.String())
		parts := make([]float64, len(bucketLabels))
		for i := range bucketLabels {
			parts[i] = h.Fraction(i)
		}
		b.Parts = append(b.Parts, parts)
	}
	return b.Render()
}
