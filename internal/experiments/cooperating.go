package experiments

import (
	"context"
	"fmt"
	"time"

	"mfc"
	"mfc/internal/content"
	"mfc/internal/core"
	"mfc/internal/websim"
)

// runSite executes a full three-stage experiment against one simulated
// installation, returning the result and the server handle.
func runSite(srvCfg websim.Config, site *content.Site, bg websim.BackgroundConfig,
	cfg core.Config, clients int, seed int64) (*core.Result, *websim.Server, error) {

	run, err := mfc.Run(context.Background(), mfc.SimTarget{
		Server: srvCfg, Site: site, Background: bg, Clients: clients, Seed: seed,
		CommandLoss:   0.015, // the paper's UDP control has no retransmit
		MonitorPeriod: -1,
	}, cfg, traceOpt(fmt.Sprintf("%s seed=%d", srvCfg.Name, seed)))
	if err != nil {
		return nil, nil, err
	}
	return run.Result, run.Server, nil
}

// ---------------------------------------------------------------------------
// Table 1 — QTNP: two standard MFC runs at θ=100ms and one MFC-mr run at
// θ=250ms.
// ---------------------------------------------------------------------------

// Table1Row is one experiment's row.
type Table1Row struct {
	Label     string
	Threshold time.Duration
	// Per-stage stopping sizes in *requests* (the paper's MFC-mr rows count
	// requests, which is crowd × MultiRequest).
	BaseStop  int // 0 = NoStop
	QueryStop int
	LargeStop int
	MaxReqs   int // requests at the largest epoch probed
	TotalReqs int
}

// Table1Result is the QTNP experiment set.
type Table1Result struct{ Rows []Table1Row }

// Table1 reproduces the §4.1 QTNP runs.
func Table1() (*Table1Result, error) {
	res := &Table1Result{}

	std := core.DefaultConfig()
	std.Threshold = 100 * time.Millisecond
	std.Step = 5
	std.MaxCrowd = 55
	std.MinClients = 50

	mr := core.DefaultConfig()
	mr.Threshold = 250 * time.Millisecond
	mr.Step = 5
	mr.MaxCrowd = 75
	mr.MinClients = 50
	mr.MultiRequest = 2

	runs := []struct {
		label string
		cfg   core.Config
		seed  int64
	}{
		{"MFC 100ms (09/11)", std, 11},
		{"MFC 100ms (09/12)", std, 12},
		{"MFC-mr 250ms (09/21)", mr, 21},
	}
	rows, err := parMap(len(runs), func(i int) (Table1Row, error) {
		r := runs[i]
		out, _, err := runSite(websim.QTNPConfig(), websim.QTSite(7),
			websim.BackgroundConfig{}, r.cfg, 85, r.seed)
		if err != nil {
			return Table1Row{}, fmt.Errorf("experiments: table1 %s: %w", r.label, err)
		}
		row := Table1Row{Label: r.label, Threshold: r.cfg.Threshold, TotalReqs: out.TotalRequests()}
		m := r.cfg.MultiRequest
		if m == 0 {
			m = 1
		}
		for _, sr := range out.Stages {
			stop := 0
			if sr.Verdict == core.VerdictStopped {
				stop = sr.StoppingCrowd * m
			}
			maxReq := 0
			if e := sr.LastRamp(); e != nil {
				maxReq = e.Crowd * m
			}
			switch sr.Stage {
			case core.StageBase:
				row.BaseStop = stop
			case core.StageSmallQuery:
				row.QueryStop = stop
			case core.StageLargeObject:
				row.LargeStop = stop
				row.MaxReqs = maxReq
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render prints the Table 1 rows.
func (r *Table1Result) Render() string {
	t := newTable(
		"Table 1: QTNP (paper: Base 20-25/40, SmallQuery 45-55/90, LargeObject NoStop; θ as shown)",
		"experiment", "Base stop", "SmallQry stop", "LargeObj stop", "#reqs")
	for _, row := range r.Rows {
		t.addf("%s|%s|%s|%s|%d", row.Label,
			stopStr(row.BaseStop > 0, row.BaseStop, row.MaxReqs),
			stopStr(row.QueryStop > 0, row.QueryStop, row.MaxReqs),
			stopStr(row.LargeStop > 0, row.LargeStop, row.MaxReqs),
			row.TotalReqs)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Table 2 — QTP: synchronization spread of MFC-mr requests per epoch.
// ---------------------------------------------------------------------------

// Table2Row is one epoch: scheduled vs received vs arrival spread.
type Table2Row struct {
	Stage     core.Stage
	Scheduled int
	Received  int
	Spread90s float64 // seconds, middle 90% of arrivals
}

// Table2Result also records that QTP never degraded.
type Table2Result struct {
	Rows []Table2Row
	// MaxMedianIncrease across all epochs and stages — the paper reports
	// QTP never showed even a 10ms increase.
	MaxMedianIncrease time.Duration
}

// Table2 reproduces the §4.1 October-3 QTP run: MFC-mr with 5 parallel
// requests per client, 75 clients.
func Table2() (*Table2Result, error) {
	cfg := core.DefaultConfig()
	cfg.Threshold = 250 * time.Millisecond
	cfg.Step = 7
	cfg.MaxCrowd = 75
	cfg.MinClients = 50
	cfg.MultiRequest = 5
	cfg.KeepSamples = true

	out, _, err := runSite(websim.QTPConfig(), websim.QTSite(7),
		websim.BackgroundConfig{Rate: 35, QueryFraction: 0.5}, cfg, 85, 103)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}
	for _, sr := range out.Stages {
		for _, e := range sr.Epochs {
			if e.Kind != core.EpochRamp {
				continue
			}
			res.Rows = append(res.Rows, Table2Row{
				Stage:     sr.Stage,
				Scheduled: e.Scheduled,
				Received:  e.Received,
				Spread90s: e.Spread90.Seconds(),
			})
			if e.NormMedian > res.MaxMedianIncrease {
				res.MaxMedianIncrease = e.NormMedian
			}
		}
	}
	return res, nil
}

// Render prints the per-epoch spread rows grouped by stage.
func (r *Table2Result) Render() string {
	t := newTable(
		"Table 2: QTP MFC-mr×5 synchronization (paper: 90% of requests within 0.15-0.45s for Base/Query; QTP never degraded)",
		"stage", "#reqs sched", "#reqs recd", "spread for 90% (s)")
	for _, row := range r.Rows {
		t.addf("%v|%d|%d|%.2f", row.Stage, row.Scheduled, row.Received, row.Spread90s)
	}
	t.addf("max median increase|%s ms||", ms(r.MaxMedianIncrease))
	return t.String()
}

// ---------------------------------------------------------------------------
// Table 3 — Univ-2 and Univ-3 at three times of day with background
// traffic; plus the Univ-1 run described in §4.2's text.
// ---------------------------------------------------------------------------

// Table3Row is one experiment run at one university at one time of day.
type Table3Row struct {
	Label     string
	BGRate    float64 // background requests/sec
	BaseStop  int     // requests (MFC-mr counts requests); 0 = NoStop
	QueryStop int
	LargeStop int
	MaxReqs   int
	MFCReqs   int
	BGShare   float64 // MFC traffic as a fraction of all requests
}

// Table3Result covers one university's three runs.
type Table3Result struct {
	Site string
	Rows []Table3Row
}

// Table3Univ2 reproduces Table 3(a): Apache behind 1 Gbps, modest
// background traffic, the thread-limit artifact stopping every stage
// around 110-150 requests.
func Table3Univ2() (*Table3Result, error) {
	return table3("univ2", websim.Univ2Config(), websim.Univ2Site(5), []struct {
		label string
		rate  float64
		seed  int64
	}{
		{"10:15", 4.2, 1015},
		{"17:25", 2.9, 1725},
		{"23:54", 3.5, 2354},
	})
}

// Table3Univ3 reproduces Table 3(b): adequate base processing, strong
// link, weak query path (stop ≈30), 5-9× more background traffic.
func Table3Univ3() (*Table3Result, error) {
	return table3("univ3", websim.Univ3Config(), websim.Univ3Site(5), []struct {
		label string
		rate  float64
		seed  int64
	}{
		{"09:25", 20.3, 925},
		{"16:05", 18.7, 1605},
		{"22:55", 12.5, 2255},
	})
}

func table3(site string, srvCfg websim.Config, siteModel *content.Site, runs []struct {
	label string
	rate  float64
	seed  int64
}) (*Table3Result, error) {
	rows, err := parMap(len(runs), func(i int) (Table3Row, error) {
		r := runs[i]
		cfg := core.DefaultConfig()
		cfg.Threshold = 250 * time.Millisecond
		cfg.Step = 5
		cfg.MaxCrowd = 75
		cfg.MinClients = 50
		cfg.MultiRequest = 2

		out, server, err := runSite(srvCfg, siteModel,
			websim.BackgroundConfig{Rate: r.rate}, cfg, 85, r.seed)
		if err != nil {
			return Table3Row{}, fmt.Errorf("experiments: table3 %s %s: %w", site, r.label, err)
		}
		row := Table3Row{Label: r.label, BGRate: r.rate, MFCReqs: out.TotalRequests()}
		for _, sr := range out.Stages {
			stop := 0
			if sr.Verdict == core.VerdictStopped {
				stop = sr.StoppingCrowd * 2
			}
			if e := sr.LastRamp(); e != nil && e.Crowd*2 > row.MaxReqs {
				row.MaxReqs = e.Crowd * 2
			}
			switch sr.Stage {
			case core.StageBase:
				row.BaseStop = stop
			case core.StageSmallQuery:
				row.QueryStop = stop
			case core.StageLargeObject:
				row.LargeStop = stop
			}
		}
		total := len(server.AccessLog())
		if total > 0 {
			mfcN := 0
			for _, a := range server.AccessLog() {
				if a.Tag == "mfc" || a.Tag == "baseline" {
					mfcN++
				}
			}
			row.BGShare = float64(mfcN) / float64(total)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table3Result{Site: site, Rows: rows}, nil
}

// Render prints one university's table.
func (r *Table3Result) Render() string {
	title := "Table 3(a): Univ-2 (paper: all stages stop at 110-150 requests — software artifact)"
	if r.Site == "univ3" {
		title = "Table 3(b): Univ-3 (paper: SmallQuery stops ≈30, LargeObject NoStop, Base varies with background)"
	}
	t := newTable(title,
		"time", "bg req/s", "Base stop", "SmallQry stop", "LargeObj stop", "MFC reqs", "MFC share")
	for _, row := range r.Rows {
		t.addf("%s|%.1f|%s|%s|%s|%d|%.0f%%", row.Label, row.BGRate,
			stopStr(row.BaseStop > 0, row.BaseStop, row.MaxReqs),
			stopStr(row.QueryStop > 0, row.QueryStop, row.MaxReqs),
			stopStr(row.LargeStop > 0, row.LargeStop, row.MaxReqs),
			row.MFCReqs, row.BGShare*100)
	}
	return t.String()
}

// Univ1Result is the §4.2 Univ-1 narrative run (no table in the paper; the
// text reports stopping sizes 5/5/25 with a 100ms threshold).
type Univ1Result struct {
	BaseFirstExceed  int
	QueryFirstExceed int
	LargeStop        int
	BaseStop         int
	QueryStop        int
}

// Univ1 runs the standard MFC against the weak research-group server. The
// paper's "stopping size 5" is FirstExceed post-analysis (footnote 2): the
// ramp cannot stop below MinSignificant=15.
func Univ1() (*Univ1Result, error) {
	cfg := core.DefaultConfig()
	cfg.Threshold = 100 * time.Millisecond
	cfg.Step = 5
	cfg.MaxCrowd = 50
	cfg.MinClients = 50

	out, _, err := runSite(websim.Univ1Config(), websim.Univ1Site(5),
		websim.BackgroundConfig{Rate: 0.15}, cfg, 65, 811)
	if err != nil {
		return nil, err
	}
	res := &Univ1Result{}
	for _, sr := range out.Stages {
		switch sr.Stage {
		case core.StageBase:
			res.BaseFirstExceed = sr.FirstExceed
			res.BaseStop = sr.StoppingCrowd
		case core.StageSmallQuery:
			res.QueryFirstExceed = sr.FirstExceed
			res.QueryStop = sr.StoppingCrowd
		case core.StageLargeObject:
			res.LargeStop = sr.StoppingCrowd
		}
	}
	return res, nil
}

// Render prints the Univ-1 narrative numbers.
func (r *Univ1Result) Render() string {
	t := newTable(
		"Univ-1 (paper: Base and SmallQuery degrade at just 5 clients; LargeObject stops at 25)",
		"metric", "value")
	t.addf("Base first >θ crowd|%d", r.BaseFirstExceed)
	t.addf("SmallQuery first >θ crowd|%d", r.QueryFirstExceed)
	t.addf("Base confirmed stop|%d", r.BaseStop)
	t.addf("SmallQuery confirmed stop|%d", r.QueryStop)
	t.addf("LargeObject confirmed stop|%d", r.LargeStop)
	return t.String()
}
