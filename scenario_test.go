package mfc

// Verdict robustness under scenarios and chaos: the determinism guard (a
// zero-intensity scenario is byte-identical to the bare preset) and the
// stop-detection confusion matrix under each environmental effect — which
// perturbations MFC's inference must shrug off, which it must detect, and
// which it provably cannot see (the reject-mode limiter, a documented
// finding).

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// fingerprintScenario is fingerprint() with Result.Scenario blanked: the
// scenario label is intentional metadata, everything else must match the
// clean run bit for bit when the scenario is zero-intensity.
func fingerprintScenario(t *testing.T, target SimTarget, cfg Config) runFingerprint {
	t.Helper()
	run, err := RunSimulatedDetailed(target, cfg)
	if err != nil {
		t.Fatalf("experiment failed: %v", err)
	}
	run.Result.Scenario = ""
	res, err := json.Marshal(run.Result)
	if err != nil {
		t.Fatalf("encoding result: %v", err)
	}
	h := sha256.New()
	for _, a := range run.Server.AccessLog() {
		fmt.Fprintf(h, "%d %s %s %s\n", a.At, a.Method, a.URL, a.Tag)
	}
	return runFingerprint{
		resultJSON: string(res),
		traceHash:  hex.EncodeToString(h.Sum(nil)),
		elapsed:    run.VirtualElapsed.String(),
	}
}

// zeroIntensityScenario configures every effect the engine knows at zero
// intensity: present, validated, and contractually invisible.
func zeroIntensityScenario() *Scenario {
	return &Scenario{
		Name:         "zero",
		RateLimit:    &ScenarioRateLimit{},
		FrontCache:   &ScenarioFrontCache{},
		Diurnal:      &ScenarioDiurnal{},
		CrossTraffic: &ScenarioCrossTraffic{},
		Faults: []ScenarioFault{
			{Kind: FaultFlap, At: 30 * time.Second},                    // no duration
			{Kind: FaultCapacityStep, At: 30 * time.Second, Factor: 1}, // factor 1
			{Kind: FaultLossBurst, At: 30 * time.Second},               // no loss
		},
	}
}

// TestZeroIntensityScenarioByteIdentical is the determinism guard: wrapping
// a run in a scenario whose every effect is configured at zero intensity
// must reproduce the bare preset's run byte for byte — Result encoding,
// access-log hash, and virtual time — across seeds.
func TestZeroIntensityScenarioByteIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCrowd = 40
	cfg.KeepSamples = true
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := SimTarget{Server: PresetQTNP(), Site: PresetQTSite(7), Clients: 65, Seed: seed,
				Background: BackgroundConfig{Rate: 5}}
			clean := fingerprintScenario(t, base, cfg)
			wrapped := base
			wrapped.Scenario = zeroIntensityScenario()
			zero := fingerprintScenario(t, wrapped, cfg)
			if clean.resultJSON != zero.resultJSON {
				t.Errorf("Result diverges under zero-intensity scenario\nclean: %.400s\nzero:  %.400s",
					clean.resultJSON, zero.resultJSON)
			}
			if clean.traceHash != zero.traceHash {
				t.Errorf("access-log hash diverges: clean %s, zero %s", clean.traceHash, zero.traceHash)
			}
			if clean.elapsed != zero.elapsed {
				t.Errorf("virtual elapsed diverges: clean %s, zero %s", clean.elapsed, zero.elapsed)
			}
		})
	}
}

// runVerdicts runs a full experiment and indexes verdicts by stage.
func runVerdicts(t *testing.T, target SimTarget, cfg Config) map[Stage]*StageResult {
	t.Helper()
	res, err := RunSimulated(target, cfg)
	if err != nil {
		t.Fatalf("experiment failed: %v", err)
	}
	out := make(map[Stage]*StageResult, len(res.Stages))
	for _, sr := range res.Stages {
		out[sr.Stage] = sr
	}
	return out
}

// TestSustainedLossNoFalseDegradationOnQTP: 1% sustained path loss on the
// over-provisioned production farm must not flip any stage's verdict — the
// quantile-based detection rule (half the crowd for Base, 90% for Large)
// is exactly what makes isolated retransmission stalls invisible.
func TestSustainedLossNoFalseDegradationOnQTP(t *testing.T) {
	cfg := DefaultConfig()
	for _, seed := range []int64{1, 2, 3} {
		base := SimTarget{Server: PresetQTP(), Site: PresetQTSite(7), Clients: 65, Seed: seed}
		clean := runVerdicts(t, base, cfg)
		lossy := base
		var err error
		if lossy.Scenario, err = ParseScenario("lossy"); err != nil {
			t.Fatal(err)
		}
		perturbed := runVerdicts(t, lossy, cfg)
		for stage, cl := range clean {
			if cl.Verdict != VerdictNoStop {
				t.Fatalf("seed %d: clean QTP %s = %v; the baseline must be over-provisioned", seed, stage, cl.Verdict)
			}
			if got := perturbed[stage].Verdict; got != VerdictNoStop {
				t.Errorf("seed %d: 1%% loss flipped %s to %v (stop=%d) — false degradation",
					seed, stage, got, perturbed[stage].StoppingCrowd)
			}
		}
	}
}

// TestFlapDuringCheckShiftsStopAtMostOneStep: a transient link flap while
// the Base stage probes and checks must not move a confirmed stopping
// crowd by more than one step — the check phase's job is to confirm
// degradation at the stop, and a 5s outage is noise it must absorb, not a
// new verdict.
func TestFlapDuringCheckShiftsStopAtMostOneStep(t *testing.T) {
	cfg := DefaultConfig()
	for _, seed := range []int64{1, 2, 3} {
		base := SimTarget{Server: PresetQTNP(), Site: PresetQTSite(7), Clients: 65, Seed: seed}
		clean := runVerdicts(t, base, cfg)[StageBase]
		if clean.Verdict != VerdictStopped {
			t.Fatalf("seed %d: clean QTNP Base = %v; expected a confirmed stop", seed, clean.Verdict)
		}
		flapped := base
		flapped.Scenario = &Scenario{Name: "mid-check-flap", Faults: []ScenarioFault{
			{Kind: FaultFlap, At: 60 * time.Second, Duration: 5 * time.Second},
		}}
		got := runVerdicts(t, flapped, cfg)[StageBase]
		if got.Verdict != VerdictStopped {
			t.Errorf("seed %d: flap flipped Base verdict to %v", seed, got.Verdict)
			continue
		}
		if diff := got.StoppingCrowd - clean.StoppingCrowd; diff > cfg.Step || diff < -cfg.Step {
			t.Errorf("seed %d: flap moved the stop %d -> %d (more than one step of %d)",
				seed, clean.StoppingCrowd, got.StoppingCrowd, cfg.Step)
		}
	}
}

// TestCapacityStepDegradesLargeObject: a standing capacity collapse on the
// access link is a real bandwidth constraint, and the Large Object stage
// exists to find exactly that — the step must flip LargeObject from
// NoStop to a confirmed stop while leaving the CPU-bound Base inference's
// verdict alone.
func TestCapacityStepDegradesLargeObject(t *testing.T) {
	cfg := DefaultConfig()
	base := SimTarget{Server: PresetQTP(), Site: PresetQTSite(7), Clients: 65, Seed: 1}
	clean := runVerdicts(t, base, cfg)
	if v := clean[StageLargeObject].Verdict; v != VerdictNoStop {
		t.Fatalf("clean QTP LargeObject = %v; baseline must be unconstrained", v)
	}
	squeezed := base
	// The farm's 20 GB/s link collapses to 40 MB/s — below the probing
	// crowd's aggregate client bandwidth, so large transfers contend.
	squeezed.Scenario = &Scenario{Name: "standing-brownout", Faults: []ScenarioFault{
		{Kind: FaultCapacityStep, At: 0, Factor: 0.002}, // no duration: holds all run
	}}
	got := runVerdicts(t, squeezed, cfg)
	if v := got[StageLargeObject].Verdict; v != VerdictStopped {
		t.Errorf("LargeObject under capacity collapse = %v, want Stopped (first-exceed %d)",
			v, got[StageLargeObject].FirstExceed)
	}
	// Directional: the bandwidth fault must show up in the bandwidth stage,
	// not smear into the CPU-bound Base inference (base pages are small).
	if v := got[StageBase].Verdict; v != VerdictNoStop {
		t.Errorf("Base under capacity collapse = %v, want NoStop", v)
	}
}

// TestDelayLimiterIsDetected: a WAF that tarpits over-limit requests adds
// real queueing delay, which the Base stage must see as degradation — the
// throttling tier becomes the installation's weakest subsystem.
func TestDelayLimiterIsDetected(t *testing.T) {
	cfg := DefaultConfig()
	base := SimTarget{Server: PresetQTP(), Site: PresetQTSite(7), Clients: 65, Seed: 1}
	throttled := base
	throttled.Scenario = &Scenario{Name: "tarpit", RateLimit: &ScenarioRateLimit{Rate: 20, Burst: 5}}
	got := runVerdicts(t, throttled, cfg)[StageBase]
	if got.Verdict != VerdictStopped {
		t.Errorf("Base behind a 20/s delay limiter = %v, want Stopped (first-exceed %d)",
			got.Verdict, got.FirstExceed)
	}
}

// TestRejectLimiterIsDetected: a WAF that answers over-limit requests
// with an instant 429 produces *fast* responses, which used to evade
// latency-quantile detection entirely (the suite's old negative finding).
// Detection now scores error-class responses — 429s, 5xx, timeouts — as
// the full request timeout: a refused client is at least as degraded as
// one that waited out the clock, so the rejecting tier is reported as the
// stopping subsystem just like its tarpit sibling.
func TestRejectLimiterIsDetected(t *testing.T) {
	cfg := DefaultConfig()
	base := SimTarget{Server: PresetQTP(), Site: PresetQTSite(7), Clients: 65, Seed: 1}
	waf := base
	waf.Scenario = &Scenario{Name: "waf", RateLimit: &ScenarioRateLimit{Rate: 20, Burst: 5, Reject: true}}
	run, err := RunSimulatedDetailed(waf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := run.Server.RateLimited(); n == 0 {
		t.Fatal("reject limiter never fired; the test exercises nothing")
	}
	got := run.Result.Stage(StageBase)
	if got.Verdict != VerdictStopped {
		t.Errorf("Base behind a 20/s reject limiter = %v, want Stopped (first-exceed %d)",
			got.Verdict, got.FirstExceed)
	}
}

// TestJunkLimiterEvades: the evasive sibling of the reject WAF — a tier
// that answers over-limit requests with instant tiny bogus 200s. The fast
// 200 is invisible to latency-quantile detection (quick) AND to the
// error-class floor (status 200 is not an error class), so the same
// constrained site that a reject limiter cannot hide flips to NoStop.
// This is the ROADMAP's predicted evasion; the analyze confusion matrix
// exists to make exactly this disagreement visible at sweep scale.
func TestJunkLimiterEvades(t *testing.T) {
	cfg := DefaultConfig()
	base := SimTarget{Server: PresetQTP(), Site: PresetQTSite(7), Clients: 65, Seed: 1}
	junk := base
	junk.Scenario = &Scenario{Name: "junk", RateLimit: &ScenarioRateLimit{Rate: 20, Burst: 5, Junk: true}}
	run, err := RunSimulatedDetailed(junk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := run.Server.JunkServed(); n == 0 {
		t.Fatal("junk limiter never fired; the test exercises nothing")
	}
	got := run.Result.Stage(StageBase)
	if got.Verdict != VerdictNoStop {
		t.Errorf("Base behind a 20/s junk limiter = %v, want NoStop (the evasion works; first-exceed %d)",
			got.Verdict, got.FirstExceed)
	}
}

// TestRTTBandsDoNotChangeVerdicts: client heterogeneity is environment,
// not server state — per-client baseline normalization must keep every
// stage verdict identical (and a confirmed stop within one step) when the
// population spans 25ms to 600ms RTT bands.
func TestRTTBandsDoNotChangeVerdicts(t *testing.T) {
	cfg := DefaultConfig()
	base := SimTarget{Server: PresetQTNP(), Site: PresetQTSite(7), Clients: 65, Seed: 1}
	clean := runVerdicts(t, base, cfg)
	banded := base
	var err error
	if banded.Scenario, err = ParseScenario("global-clients"); err != nil {
		t.Fatal(err)
	}
	got := runVerdicts(t, banded, cfg)
	for stage, cl := range clean {
		g := got[stage]
		if g.Verdict != cl.Verdict {
			t.Errorf("%s verdict changed under RTT bands: %v -> %v", stage, cl.Verdict, g.Verdict)
			continue
		}
		if cl.Verdict == VerdictStopped {
			if diff := g.StoppingCrowd - cl.StoppingCrowd; diff > cfg.Step || diff < -cfg.Step {
				t.Errorf("%s stop moved %d -> %d under RTT bands (more than one step)",
					stage, cl.StoppingCrowd, g.StoppingCrowd)
			}
		}
	}
}

// TestCrossTrafficOnQTPStaysNoStop: an organic flash crowd sharing the
// over-provisioned farm consumes headroom the experiment never needed —
// the sixteen-server farm absorbs both, and no stage may report a stop.
func TestCrossTrafficOnQTPStaysNoStop(t *testing.T) {
	cfg := DefaultConfig()
	base := SimTarget{Server: PresetQTP(), Site: PresetQTSite(7), Clients: 65, Seed: 1}
	crowded := base
	var err error
	if crowded.Scenario, err = ParseScenario("flash-crowd"); err != nil {
		t.Fatal(err)
	}
	got := runVerdicts(t, crowded, cfg)
	for stage, sr := range got {
		if sr.Verdict != VerdictNoStop {
			t.Errorf("%s under cross-traffic = %v (stop=%d), want NoStop on the farm",
				stage, sr.Verdict, sr.StoppingCrowd)
		}
	}
}

// TestScenarioEventsAndResultMetadata: a scenario-wrapped run announces
// itself (ScenarioApplied before any stage), reports each chaos trigger
// and its restoration as typed events, and stamps the Result with the
// scenario label.
func TestScenarioEventsAndResultMetadata(t *testing.T) {
	cfg := DefaultConfig()
	target := SimTarget{Server: PresetQTNP(), Site: PresetQTSite(7), Clients: 65, Seed: 1}
	var err error
	if target.Scenario, err = ParseScenario("flaky-link"); err != nil {
		t.Fatal(err)
	}
	var events []Event
	sess, err := Run(context.Background(), target, cfg,
		WithObserver(func(ev Event) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Result.Scenario != "flaky-link" {
		t.Errorf("Result.Scenario = %q, want flaky-link", sess.Result.Scenario)
	}
	applied, faults := -1, 0
	firstStage := -1
	for i, ev := range events {
		switch e := ev.(type) {
		case ScenarioApplied:
			applied = i
			if e.Name != "flaky-link" || len(e.Effects) != 2 {
				t.Errorf("ScenarioApplied = %+v", e)
			}
		case FaultInjected:
			faults++
			if e.Kind != FaultFlap || e.Scenario != "flaky-link" {
				t.Errorf("FaultInjected = %+v", e)
			}
		case StageStarted:
			if firstStage < 0 {
				firstStage = i
			}
		}
	}
	if applied < 0 {
		t.Fatal("no ScenarioApplied event")
	}
	if firstStage >= 0 && applied > firstStage {
		t.Errorf("ScenarioApplied at event %d, after the first StageStarted at %d", applied, firstStage)
	}
	// Both 5s flaps (60s, 180s) fire and restore inside the experiment.
	if faults < 4 {
		t.Errorf("saw %d FaultInjected events, want 4 (two flaps, injected+restored)", faults)
	}
}
