package mfc

import (
	"mfc/internal/content"
	"mfc/internal/core"
	"mfc/internal/scenario"
	"mfc/internal/websim"
)

// Re-exported core types: the public API is the internal/core contract.
type (
	// Config tunes an MFC experiment (thresholds, crowd ramp, quantiles,
	// MFC-mr, staggering).
	Config = core.Config
	// Stage identifies a request category.
	Stage = core.Stage
	// Request is one HTTP request an MFC client issues.
	Request = core.Request
	// Sample is one client observation.
	Sample = core.Sample
	// Result is a full experiment outcome.
	Result = core.Result
	// StageResult is one stage's outcome.
	StageResult = core.StageResult
	// EpochResult is one epoch's outcome.
	EpochResult = core.EpochResult
	// StageVerdict is the stage-level conclusion.
	StageVerdict = core.StageVerdict
	// Assessment is the operator-facing report.
	Assessment = core.Assessment
	// Finding is one sub-system conclusion.
	Finding = core.Finding
	// Coordinator orchestrates experiments over a Platform.
	Coordinator = core.Coordinator
	// Platform abstracts where clients run (simulation, in-process live,
	// remote UDP agents).
	Platform = core.Platform
	// Client is one MFC participant.
	Client = core.Client
	// Baseline is a client's delay-computation outcome.
	Baseline = core.Baseline
	// Clock abstracts virtual vs. wall time.
	Clock = core.Clock
	// StaggerDist selects the staggered-arrival inter-arrival distribution.
	StaggerDist = core.StaggerDist
	// EpochKind distinguishes regular ramp epochs from check-phase epochs.
	EpochKind = core.EpochKind
)

// Typed event stream: Run delivers these through WithObserver.
type (
	// Event is one item of a run's typed progress stream.
	Event = core.Event
	// Observer receives events synchronously on the coordinator's
	// goroutine.
	Observer = core.Observer
	// StageStarted announces a stage is about to run.
	StageStarted = core.StageStarted
	// EpochCompleted reports one synchronized crowd's outcome.
	EpochCompleted = core.EpochCompleted
	// MeasurersReserved reports the §6 measurer reservation for one URL.
	MeasurersReserved = core.MeasurersReserved
	// CheckPhaseEntered announces the N-1/N/N+1 confirmation epochs.
	CheckPhaseEntered = core.CheckPhaseEntered
	// ScenarioApplied announces the scenario wrapping the run, before any
	// stage.
	ScenarioApplied = core.ScenarioApplied
	// FaultInjected reports a chaos trigger firing (or restoring)
	// mid-experiment.
	FaultInjected = core.FaultInjected
	// ExperimentFinished is the terminal event, exactly once per run.
	ExperimentFinished = core.ExperimentFinished
)

// Epoch kind constants.
const (
	EpochRamp        = core.EpochRamp
	EpochCheckMinus  = core.EpochCheckMinus
	EpochCheckRepeat = core.EpochCheckRepeat
	EpochCheckPlus   = core.EpochCheckPlus
)

// LogObserver renders events as human-readable progress lines through
// logf (e.g. log.Printf) — the migration path for -v style CLI flags.
func LogObserver(logf func(string, ...any)) Observer { return core.LogObserver(logf) }

// Stagger distribution constants.
const (
	StaggerUniform     = core.StaggerUniform
	StaggerExponential = core.StaggerExponential
)

// Stage constants.
const (
	StageBase        = core.StageBase
	StageSmallQuery  = core.StageSmallQuery
	StageLargeObject = core.StageLargeObject
)

// Verdict constants.
const (
	VerdictNoStop      = core.VerdictNoStop
	VerdictStopped     = core.VerdictStopped
	VerdictUnavailable = core.VerdictUnavailable
	VerdictAborted     = core.VerdictAborted
)

// Stages lists the standard stage order.
var Stages = core.Stages

// DefaultConfig returns the paper's standard parameters.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewCoordinator builds a coordinator over a custom platform, rendering
// its event stream as legacy log lines.
//
// Deprecated: use Run with a Target, or core's New with WithObserver for
// custom platforms; NewCoordinator is a thin shim kept for migration
// (proven equivalent by facade_test.go).
func NewCoordinator(p Platform, cfg Config, logf func(string, ...any)) *Coordinator {
	return core.NewCoordinator(p, cfg, logf)
}

// Assess converts raw stage results into sub-system findings, including the
// DDoS-vulnerability reading.
func Assess(r *Result) *Assessment { return core.Assess(r) }

// CompareStages renders the relative-provisioning one-liner.
func CompareStages(r *Result) string { return core.CompareStages(r) }

// Content-model types for describing targets.
type (
	// Site is a collection of web objects hosted by a (simulated) server.
	Site = content.Site
	// Object is one addressable web object.
	Object = content.Object
	// Profile is the profiling-stage outcome: objects classified into the
	// stages' request categories.
	Profile = content.Profile
	// SiteGenConfig controls synthetic site generation.
	SiteGenConfig = content.GenConfig
)

// GenerateSite builds a deterministic synthetic site.
func GenerateSite(host string, seed int64, cfg SiteGenConfig) *Site {
	return content.Generate(host, seed, cfg)
}

// NewSite builds a site from explicit objects.
func NewSite(host, base string, objects []Object) (*Site, error) {
	return content.NewSite(host, base, objects)
}

// Scenario & chaos layer: composable environment effects around a
// simulated run (see internal/scenario and DESIGN.md "Scenarios & chaos").
type (
	// Scenario declares the environment effects wrapping a SimTarget run.
	Scenario = scenario.Config
	// ScenarioRTTBand is one weighted client RTT band.
	ScenarioRTTBand = scenario.RTTBand
	// ScenarioRateLimit is the WAF-style token-bucket tier.
	ScenarioRateLimit = scenario.RateLimit
	// ScenarioFrontCache is the CDN/cache front tier.
	ScenarioFrontCache = scenario.FrontCache
	// ScenarioDiurnal modulates background load sinusoidally.
	ScenarioDiurnal = scenario.Diurnal
	// ScenarioCrossTraffic is a flash-crowd surge during the experiment.
	ScenarioCrossTraffic = scenario.CrossTraffic
	// ScenarioFault is one scheduled chaos trigger.
	ScenarioFault = scenario.Fault
)

// Chaos fault kinds.
const (
	FaultFlap         = scenario.FaultFlap
	FaultCapacityStep = scenario.FaultCapacityStep
	FaultLossBurst    = scenario.FaultLossBurst
)

// ParseScenario resolves a scenario reference — a registered name (see
// ScenarioNames) or an inline JSON object — and validates it.
func ParseScenario(s string) (*Scenario, error) { return scenario.Parse(s) }

// DecodeScenario parses and validates a JSON scenario configuration.
func DecodeScenario(data []byte) (*Scenario, error) { return scenario.Decode(data) }

// ScenarioNames lists the registered scenario presets, sorted.
func ScenarioNames() []string { return scenario.Names() }

// Server-model types for simulated targets.
type (
	// ServerConfig describes a simulated web-server installation.
	ServerConfig = websim.Config
	// ServerBackend selects the dynamic-content interface.
	ServerBackend = websim.Backend
	// BackgroundConfig describes non-MFC traffic during an experiment.
	BackgroundConfig = websim.BackgroundConfig
	// SyntheticModel is a synthetic response-time function (§3.1).
	SyntheticModel = websim.SyntheticModel
	// LinearModel, ExponentialModel, StepModel are the validation models.
	LinearModel      = websim.LinearModel
	ExponentialModel = websim.ExponentialModel
	StepModel        = websim.StepModel
)

// Backend constants.
const (
	BackendMongrel = websim.BackendMongrel
	BackendFastCGI = websim.BackendFastCGI
)

// Presets reproducing the paper's measured installations (§3, §4).

// PresetValidation returns the §3.1 validation server driven by a synthetic
// response-time model, plus its minimal site.
func PresetValidation(model SyntheticModel) (ServerConfig, *Site) {
	return websim.ValidationConfig(model), websim.ValidationSite()
}

// PresetLab returns the §3.2 Apache/MySQL lab target with the chosen
// dynamic-content backend, plus its site.
func PresetLab(backend ServerBackend) (ServerConfig, *Site) {
	return websim.LabConfig(backend), websim.LabSite()
}

// PresetQTNP returns the top-50 commercial site's non-production twin.
func PresetQTNP() ServerConfig { return websim.QTNPConfig() }

// PresetQTP returns the production 16-server load-balanced system.
func PresetQTP() ServerConfig { return websim.QTPConfig() }

// PresetQTSite returns the commercial site's content model.
func PresetQTSite(seed int64) *Site { return websim.QTSite(seed) }

// PresetUniv1, PresetUniv2, PresetUniv3 return the §4.2 university servers.
func PresetUniv1() ServerConfig { return websim.Univ1Config() }
func PresetUniv2() ServerConfig { return websim.Univ2Config() }
func PresetUniv3() ServerConfig { return websim.Univ3Config() }

// PresetUniv1Site, PresetUniv2Site, PresetUniv3Site return their content.
func PresetUniv1Site(seed int64) *Site { return websim.Univ1Site(seed) }
func PresetUniv2Site(seed int64) *Site { return websim.Univ2Site(seed) }
func PresetUniv3Site(seed int64) *Site { return websim.Univ3Site(seed) }
