package mfc

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mfc/internal/core"
	"mfc/internal/websim"
)

// Resource attribution implements the paper's §2.3 observation that
// "server-side support in instrumenting servers to track resource usage
// using utilities (such as atop or sysstat) can offer better insights":
// when the operator cooperates (which in simulation is always), the MFC
// epochs are joined against the atop-style monitor so each confirmed
// degradation is attributed to the sub-system that was actually saturated,
// rather than inferred from the request category alone.

// ResourceKind names an attributable server resource.
type ResourceKind string

// The attributable resources.
const (
	ResourceCPU     ResourceKind = "cpu"
	ResourceMemory  ResourceKind = "memory"
	ResourceDisk    ResourceKind = "disk"
	ResourceNetwork ResourceKind = "network"
	ResourceDBPool  ResourceKind = "db-pool"
	ResourceNone    ResourceKind = "none"
)

// Attribution joins one stage's verdict with the observed resource state
// around its stopping epoch.
type Attribution struct {
	Stage    Stage
	Stopped  bool
	At       int // stopping crowd (0 if NoStop)
	Dominant ResourceKind
	// Utilization of the dominant resource in the stopping window
	// (fraction for cpu/disk/network; resident/RAM for memory; queue
	// length for db-pool, normalized by pool size).
	Level float64
	// Agrees reports whether the instrumented attribution matches the
	// black-box inference from the request category (§3.3: black-box
	// inferences are sub-system granular; instrumentation confirms them).
	Agrees bool
}

// expectedResource is the black-box expectation per stage.
func expectedResource(s Stage) []ResourceKind {
	switch s {
	case core.StageLargeObject:
		return []ResourceKind{ResourceNetwork}
	case core.StageSmallQuery:
		return []ResourceKind{ResourceDBPool, ResourceCPU, ResourceMemory, ResourceDisk}
	default:
		return []ResourceKind{ResourceCPU}
	}
}

// AttributeResources inspects a simulated run's monitor samples around each
// stage's stopping epoch and names the saturated resource. It needs the
// simulation handles (Session.Server, Session.Monitor), so it applies to
// SimTarget runs with the monitor on.
func AttributeResources(run *Session) []Attribution {
	if run == nil || run.Result == nil || run.Monitor == nil || run.Server == nil {
		return nil
	}
	var out []Attribution
	for _, sr := range run.Result.Stages {
		a := Attribution{Stage: sr.Stage}
		var window *core.EpochResult
		if sr.Verdict == core.VerdictStopped {
			a.Stopped = true
			a.At = sr.StoppingCrowd
			// The confirming epoch is the last one recorded.
			if n := len(sr.Epochs); n > 0 {
				window = &sr.Epochs[n-1]
			}
		} else if e := sr.LastRamp(); e != nil {
			window = e
		}
		if window == nil {
			a.Dominant = ResourceNone
			out = append(out, a)
			continue
		}
		w := run.Monitor.Window(window.ArriveAt-time.Second, window.Done)
		a.Dominant, a.Level = dominantResource(run.Server, w)
		if !a.Stopped {
			// Nothing to attribute: report the hottest resource anyway,
			// but a NoStop with a cool server is simply "none".
			if a.Level < 0.5 {
				a.Dominant = ResourceNone
			}
		}
		for _, exp := range expectedResource(sr.Stage) {
			if a.Dominant == exp {
				a.Agrees = true
				break
			}
		}
		out = append(out, a)
	}
	return out
}

// dominantResource scores each resource's pressure in a monitor window.
func dominantResource(srv *websim.Server, w websim.Sample) (ResourceKind, float64) {
	cfg := srv.Config()
	type cand struct {
		kind  ResourceKind
		level float64
	}
	replicas := float64(cfg.Replicas)
	if replicas < 1 {
		replicas = 1
	}
	cands := []cand{
		{ResourceCPU, w.CPUUtil},
		{ResourceDisk, w.DiskUtil},
		{ResourceNetwork, w.NetBytesPerSec / (cfg.AccessBandwidth * replicas)},
		{ResourceMemory, float64(w.ResidentBytes) / float64(cfg.RAMBytes*int64(replicas))},
		{ResourceDBPool, float64(w.DBQueue) / float64(cfg.DBConns*int(replicas))},
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].level > cands[j].level })
	return cands[0].kind, cands[0].level
}

// RenderAttribution formats attributions for operators.
func RenderAttribution(atts []Attribution) string {
	var b strings.Builder
	b.WriteString("Resource attribution (instrumented target):\n")
	for _, a := range atts {
		verdict := "NoStop"
		if a.Stopped {
			verdict = fmt.Sprintf("stop @ %d", a.At)
		}
		agree := ""
		if a.Stopped {
			if a.Agrees {
				agree = " — confirms the black-box inference"
			} else {
				agree = " — DIFFERS from the black-box inference"
			}
		}
		fmt.Fprintf(&b, "  %-12s %-10s dominant=%s (level %.2f)%s\n",
			a.Stage, verdict, a.Dominant, a.Level, agree)
	}
	return b.String()
}
