package mfc

// Differential equivalence of the netsim kernels at full-experiment scale:
// every experiment must produce byte-identical results whether Link
// waterfills run immediately on each flow change (the reference kernel)
// or batched once per simulated instant (the default). The comparison
// covers the complete core.Result encoding, the server-side event trace
// (access-log hash), and the simulated duration, across eight seeds, the
// §4 presets, and sites sampled from several §5 population bands.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"mfc/internal/population"
)

// runFingerprint reduces one simulated experiment to a comparable tuple:
// the full Result JSON, a hash of the server's request-arrival trace, and
// the virtual time span.
type runFingerprint struct {
	resultJSON string
	traceHash  string
	elapsed    string
}

func fingerprint(t *testing.T, target SimTarget, cfg Config) runFingerprint {
	t.Helper()
	run, err := RunSimulatedDetailed(target, cfg)
	if err != nil {
		t.Fatalf("experiment failed: %v", err)
	}
	res, err := json.Marshal(run.Result)
	if err != nil {
		t.Fatalf("encoding result: %v", err)
	}
	h := sha256.New()
	for _, a := range run.Server.AccessLog() {
		fmt.Fprintf(h, "%d %s %s %s\n", a.At, a.Method, a.URL, a.Tag)
	}
	return runFingerprint{
		resultJSON: string(res),
		traceHash:  hex.EncodeToString(h.Sum(nil)),
		elapsed:    run.VirtualElapsed.String(),
	}
}

// underImmediateKernel runs fn with the reference kernel selected for every
// environment created inside, restoring the default afterwards.
func underImmediateKernel(t *testing.T, fn func()) {
	t.Helper()
	if err := os.Setenv("MFC_NETSIM_IMMEDIATE", "1"); err != nil {
		t.Fatal(err)
	}
	defer os.Unsetenv("MFC_NETSIM_IMMEDIATE")
	fn()
}

func diffCompare(t *testing.T, name string, target SimTarget, cfg Config) {
	t.Helper()
	batched := fingerprint(t, target, cfg)
	var immediate runFingerprint
	underImmediateKernel(t, func() { immediate = fingerprint(t, target, cfg) })
	if batched.resultJSON != immediate.resultJSON {
		t.Errorf("%s: Result diverges between kernels\nbatched:   %.400s\nimmediate: %.400s",
			name, batched.resultJSON, immediate.resultJSON)
	}
	if batched.traceHash != immediate.traceHash {
		t.Errorf("%s: event-trace hash diverges: batched %s, immediate %s",
			name, batched.traceHash, immediate.traceHash)
	}
	if batched.elapsed != immediate.elapsed {
		t.Errorf("%s: virtual elapsed diverges: batched %s, immediate %s",
			name, batched.elapsed, immediate.elapsed)
	}
}

// TestBatchedKernelMatchesImmediateAcrossSeeds runs the QTNP three-stage
// experiment under both kernels for eight seeds, with per-sample retention
// on so even sample-level orderings are compared.
func TestBatchedKernelMatchesImmediateAcrossSeeds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCrowd = 50
	cfg.KeepSamples = true
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			diffCompare(t, fmt.Sprintf("qtnp/seed%d", seed), SimTarget{
				Server: PresetQTNP(), Site: PresetQTSite(7), Clients: 65, Seed: seed,
			}, cfg)
		})
	}
}

// TestBatchedKernelMatchesImmediatePresets covers structurally different
// targets: the weak-query university server, a LAN lab setting, and a lossy
// control channel (command and poll drops exercise the no-reply paths).
func TestBatchedKernelMatchesImmediatePresets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCrowd = 40
	cfg.MinClients = 30
	cases := []struct {
		name   string
		target SimTarget
	}{
		{"univ3", SimTarget{Server: PresetUniv3(), Site: PresetUniv3Site(5), Clients: 65, Seed: 11}},
		{"univ1-lan", SimTarget{Server: PresetUniv1(), Site: PresetUniv1Site(5), Clients: 40, LAN: true, Seed: 12}},
		{"qtnp-lossy", SimTarget{Server: PresetQTNP(), Site: PresetQTSite(7), Clients: 65, Seed: 13,
			CommandLoss: 0.1, PollLoss: 0.1}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) { diffCompare(t, c.name, c.target, cfg) })
	}
}

// TestBatchedKernelMatchesImmediateBands samples sites from several §5
// population bands — the synchronized mini-flash-crowd workload batching
// was built for — and compares full runs under both kernels.
func TestBatchedKernelMatchesImmediateBands(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCrowd = 40
	cfg.MinClients = 30
	bands := []population.Band{population.Rank1K, population.Rank100K, population.Startup, population.Phishing}
	for _, band := range bands {
		band := band
		t.Run(band.String(), func(t *testing.T) {
			for i := 0; i < 2; i++ {
				sample := population.SampleAt(band, i, 77)
				target := SimTarget{
					Server: sample.Config, Site: sample.Site,
					Clients: 40, Seed: sample.MeasureSeed,
				}
				diffCompare(t, fmt.Sprintf("%s-%d", band, i), target, cfg)
			}
		})
	}
}
