package mfc

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestAttributionNamesTheRightResource runs each lab workload and checks
// that the instrumented attribution names the resource the paper assigns
// to that stage.
func TestAttributionNamesTheRightResource(t *testing.T) {
	srvCfg, site := PresetLab(BackendFastCGI)
	cfg := DefaultConfig()
	cfg.MaxCrowd = 50
	cfg.Threshold = 150 * time.Millisecond
	run, err := Run(context.Background(), SimTarget{
		Server: srvCfg, Site: site, Clients: 55, LAN: true, Seed: 6,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	atts := AttributeResources(run)
	if len(atts) != 3 {
		t.Fatalf("attributions = %d", len(atts))
	}
	byStage := map[Stage]Attribution{}
	for _, a := range atts {
		byStage[a.Stage] = a
	}

	lo := byStage[StageLargeObject]
	if !lo.Stopped {
		t.Fatal("Large Object should stop on the 100Mbit lab link at 150ms")
	}
	if lo.Dominant != ResourceNetwork {
		t.Errorf("LargeObject dominant = %v, want network", lo.Dominant)
	}
	if !lo.Agrees {
		t.Error("network attribution should confirm the black-box inference")
	}

	sq := byStage[StageSmallQuery]
	if sq.Stopped && sq.Dominant != ResourceCPU && sq.Dominant != ResourceMemory && sq.Dominant != ResourceDBPool {
		t.Errorf("SmallQuery dominant = %v, want a back-end resource", sq.Dominant)
	}

	out := RenderAttribution(atts)
	if !strings.Contains(out, "network") {
		t.Errorf("rendering missing resource names:\n%s", out)
	}
}

// TestAttributionNoStopIsNone: a strong target yields no attribution.
func TestAttributionNoStopIsNone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCrowd = 30
	run, err := Run(context.Background(), SimTarget{
		Server: PresetQTP(), Site: PresetQTSite(7), Clients: 60, Seed: 8,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range AttributeResources(run) {
		if a.Stopped {
			t.Errorf("%v stopped on QTP", a.Stage)
		}
		if a.Dominant != ResourceNone {
			t.Errorf("%v dominant = %v on an idle farm, want none", a.Stage, a.Dominant)
		}
	}
}

// TestExponentialStagger: the exponential inter-arrival variant still
// spreads the load enough to be absorbed by a weak server.
func TestExponentialStagger(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCrowd = 30
	cfg.Stagger = 150 * time.Millisecond
	cfg.StaggerDist = StaggerExponential
	sr, _, err := RunSimulatedStage(SimTarget{
		Server: PresetUniv1(), Site: PresetUniv1Site(5), Clients: 60, Seed: 3,
	}, cfg, StageBase)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Verdict != VerdictNoStop {
		t.Errorf("verdict = %v, want NoStop under Poisson arrivals", sr.Verdict)
	}
	if StaggerExponential.String() != "exponential" || StaggerUniform.String() != "uniform" {
		t.Error("StaggerDist strings")
	}
}
