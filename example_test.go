package mfc_test

import (
	"fmt"
	"time"

	"mfc"
)

// ExampleRunSimulated profiles the paper's QTNP preset and prints each
// stage's verdict. Simulated runs are deterministic in (SimTarget, Config),
// so this example's output is stable.
func ExampleRunSimulated() {
	cfg := mfc.DefaultConfig()
	cfg.MaxCrowd = 55
	res, err := mfc.RunSimulated(mfc.SimTarget{
		Server:  mfc.PresetQTNP(),
		Site:    mfc.PresetQTSite(7),
		Clients: 65,
		Seed:    42,
	}, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, sr := range res.Stages {
		if sr.Verdict == mfc.VerdictStopped {
			fmt.Printf("%s: stopped at %d\n", sr.Stage, sr.StoppingCrowd)
		} else {
			fmt.Printf("%s: %v\n", sr.Stage, sr.Verdict)
		}
	}
	// Output:
	// Base: stopped at 25
	// SmallQuery: stopped at 50
	// LargeObject: NoStop
}

// ExampleAssess turns a result into the operator-facing DDoS reading.
func ExampleAssess() {
	cfg := mfc.DefaultConfig()
	res, err := mfc.RunSimulated(mfc.SimTarget{
		Server:  mfc.PresetUniv3(),
		Site:    mfc.PresetUniv3Site(5),
		Clients: 65,
		Seed:    99,
	}, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a := mfc.Assess(res)
	fmt.Println("ddos:", a.DDoS)
	// Output:
	// ddos: highly-vulnerable
}

// ExampleConfig_staggered shows the §6 staggered-arrival extension: the
// same weak server that keels over under synchronized arrivals absorbs the
// load when requests are spaced 200ms apart.
func ExampleConfig_staggered() {
	run := func(stagger time.Duration) mfc.StageVerdict {
		cfg := mfc.DefaultConfig()
		cfg.MaxCrowd = 30
		cfg.Stagger = stagger
		sr, _, err := mfc.RunSimulatedStage(mfc.SimTarget{
			Server: mfc.PresetUniv1(), Site: mfc.PresetUniv1Site(5),
			Clients: 60, Seed: 3,
		}, cfg, mfc.StageBase)
		if err != nil {
			return mfc.VerdictAborted
		}
		return sr.Verdict
	}
	fmt.Println("synchronized:", run(0))
	fmt.Println("staggered:", run(200*time.Millisecond))
	// Output:
	// synchronized: Stopped
	// staggered: NoStop
}
