package mfc_test

import (
	"context"
	"fmt"
	"time"

	"mfc"
)

// ExampleRun profiles the paper's QTNP preset and prints each stage's
// verdict. Simulated runs are deterministic in (Target, Config), so this
// example's output is stable. The same call shape works against LabTarget
// and LiveTarget.
func ExampleRun() {
	cfg := mfc.DefaultConfig()
	cfg.MaxCrowd = 55
	run, err := mfc.Run(context.Background(), mfc.SimTarget{
		Server:  mfc.PresetQTNP(),
		Site:    mfc.PresetQTSite(7),
		Clients: 65,
		Seed:    42,
	}, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, sr := range run.Result.Stages {
		if sr.Verdict == mfc.VerdictStopped {
			fmt.Printf("%s: stopped at %d\n", sr.Stage, sr.StoppingCrowd)
		} else {
			fmt.Printf("%s: %v\n", sr.Stage, sr.Verdict)
		}
	}
	// Output:
	// Base: stopped at 25
	// SmallQuery: stopped at 50
	// LargeObject: NoStop
}

// ExampleRun_observer streams typed progress events while the experiment
// runs: the check-phase entries of the deterministic QTNP run.
func ExampleRun_observer() {
	cfg := mfc.DefaultConfig()
	cfg.MaxCrowd = 55
	_, err := mfc.Run(context.Background(), mfc.SimTarget{
		Server:  mfc.PresetQTNP(),
		Site:    mfc.PresetQTSite(7),
		Clients: 65,
		Seed:    42,
	}, cfg, mfc.WithObserver(func(ev mfc.Event) {
		switch e := ev.(type) {
		case mfc.CheckPhaseEntered:
			fmt.Printf("%s: check phase at crowd %d\n", e.Stage, e.Crowd)
		case mfc.ExperimentFinished:
			fmt.Printf("finished: %d stages\n", len(e.Result.Stages))
		}
	}))
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// Base: check phase at crowd 25
	// SmallQuery: check phase at crowd 50
	// finished: 3 stages
}

// ExampleAssess turns a result into the operator-facing DDoS reading.
func ExampleAssess() {
	cfg := mfc.DefaultConfig()
	run, err := mfc.Run(context.Background(), mfc.SimTarget{
		Server:  mfc.PresetUniv3(),
		Site:    mfc.PresetUniv3Site(5),
		Clients: 65,
		Seed:    99,
	}, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a := mfc.Assess(run.Result)
	fmt.Println("ddos:", a.DDoS)
	// Output:
	// ddos: highly-vulnerable
}

// ExampleWithStage shows the §6 staggered-arrival extension through the
// single-stage mode: the same weak server that keels over under
// synchronized arrivals absorbs the load when requests are spaced 200ms
// apart.
func ExampleWithStage() {
	probe := func(stagger time.Duration) mfc.StageVerdict {
		cfg := mfc.DefaultConfig()
		cfg.MaxCrowd = 30
		cfg.Stagger = stagger
		run, err := mfc.Run(context.Background(), mfc.SimTarget{
			Server: mfc.PresetUniv1(), Site: mfc.PresetUniv1Site(5),
			Clients: 60, Seed: 3,
		}, cfg, mfc.WithStage(mfc.StageBase))
		if err != nil {
			return mfc.VerdictAborted
		}
		return run.Result.Stages[0].Verdict
	}
	fmt.Println("synchronized:", probe(0))
	fmt.Println("staggered:", probe(200*time.Millisecond))
	// Output:
	// synchronized: Stopped
	// staggered: NoStop
}
