package mfc

import (
	"context"
	"fmt"
	"time"

	"mfc/internal/content"
	"mfc/internal/core"
	"mfc/internal/netsim"
	"mfc/internal/scenario"
	"mfc/internal/websim"
)

// SimClientSpec describes one simulated wide-area client.
type SimClientSpec = core.SimClientSpec

// SimTarget describes a simulated experiment: the server model, its
// content, background traffic, and the client population. It implements
// Target; a SimTarget run is deterministic in (SimTarget, Config).
type SimTarget struct {
	// Server is the installation under test (use a Preset* or hand-build).
	Server ServerConfig
	// Site is the hosted content (required).
	Site *Site
	// Background is the non-MFC workload during the experiment (zero Rate
	// disables it).
	Background BackgroundConfig
	// Clients is the number of simulated PlanetLab clients (default 65,
	// the paper's validation population). Ignored when ClientSpecs or
	// Specs is set.
	Clients int
	// LAN places the clients on the target's LAN (§3 lab setting) instead
	// of the wide area.
	LAN bool
	// ClientSpecs overrides the generated client population entirely.
	ClientSpecs []SimClientSpec
	// Specs, when non-nil, generates the client population against the
	// simulation environment — for populations that reference simulation
	// entities, e.g. a shared middle bottleneck link (§2.2.3's confound).
	// Takes precedence over Clients/LAN; ignored when ClientSpecs is set.
	Specs func(env *netsim.Env) []SimClientSpec
	// Scenario wraps the run's environment with scenario/chaos effects
	// (loss, rate limiting, CDN tiers, RTT bands, scheduled faults...).
	// nil is the clean environment; a scenario-wrapped run is still a pure
	// function of (SimTarget, Config) — the scenario only redirects which
	// deterministic run happens. When the scenario declares RTT bands they
	// generate the client population (unless ClientSpecs/Specs override).
	Scenario *Scenario
	// Seed drives every random choice (default 1). The same SimTarget and
	// Config always produce the same Result.
	Seed int64
	// CommandLoss and PollLoss are UDP control-message loss probabilities.
	CommandLoss float64
	PollLoss    float64

	// NoAccessLog disables the simulated server's access log. The log is
	// on by default (arrival-spread analyses read it); campaign-scale runs
	// switch it off to keep memory flat.
	NoAccessLog bool
	// MonitorPeriod sets the atop-style resource monitor's sampling
	// period: 0 means the 1s default, negative disables the monitor
	// (campaign-scale runs).
	MonitorPeriod time.Duration

	// Logf receives coordinator progress lines.
	//
	// Deprecated: use WithObserver on Run for the typed event stream; Logf
	// is rendered from the same events.
	Logf func(string, ...any)
}

// open implements Target.
func (t SimTarget) open(_ context.Context, cfg Config, ro *runOptions) (*binding, error) {
	if t.Site == nil {
		return nil, fmt.Errorf("mfc: SimTarget.Site is required")
	}
	seed := t.Seed
	if seed == 0 {
		seed = 1
	}
	scen := t.Scenario
	if err := scen.Validate(); err != nil {
		return nil, fmt.Errorf("mfc: SimTarget.Scenario: %w", err)
	}
	serverCfg := scen.WrapServer(t.Server)
	env := netsim.NewEnv(seed)
	server := websim.NewServer(env, serverCfg, t.Site)
	if !t.NoAccessLog {
		server.EnableAccessLog()
	}

	specs := t.ClientSpecs
	if specs == nil && t.Specs != nil {
		specs = t.Specs(env)
	}
	if specs == nil {
		n := t.Clients
		if n <= 0 {
			n = 65
		}
		if s := scen.Specs(seed, n); s != nil {
			specs = s
		} else if t.LAN {
			specs = core.LANSpecs(env, n)
		} else {
			specs = core.PlanetLabSpecs(env, n)
		}
	}
	plat := core.NewSimPlatform(env, server, specs)
	plat.CommandLoss = t.CommandLoss
	plat.PollLoss = t.PollLoss

	bg := websim.StartBackground(env, server, t.Background)
	var mon *websim.Monitor
	if t.MonitorPeriod >= 0 {
		mon = websim.NewMonitor(env, server, t.MonitorPeriod)
	}
	ro.addObserver(core.LogObserver(t.Logf))

	var ctl *scenario.Controller
	if scen != nil {
		// Emit reads ro.observer at event time: ScenarioApplied fires here
		// (before any stage), FaultInjected from driver callbacks mid-run,
		// both through the fully composed observer chain.
		ctl = scen.Start(scenario.Hooks{
			Env: env, Server: server, Background: bg,
			Emit: func(ev core.Event) {
				if ro.observer != nil {
					ro.observer(ev)
				}
			},
		})
	}

	return &binding{
		platform: plat,
		fetcher:  content.SiteFetcher{Site: t.Site},
		host:     t.Site.Host,
		base:     t.Site.Base,
		execute: func(body func()) {
			env.Go("coordinator", func(p *netsim.Proc) {
				plat.Bind(p)
				body()
				bg.Stop()
				if ctl != nil {
					ctl.Stop()
				}
				if mon != nil {
					mon.Stop()
				}
			})
			env.Run(0)
		},
		finish: func(r *Session) {
			r.Server = server
			r.Monitor = mon
			r.VirtualElapsed = env.Now()
			if scen != nil && r.Result != nil {
				r.Result.Scenario = scen.Label()
			}
		},
		close: func() {},
	}, nil
}

// SimRun is the outcome of RunSimulatedDetailed: the result plus handles
// into the simulation for resource attribution (the lab-validation
// experiments read the monitor the way the paper reads atop).
//
// Deprecated: Run returns the same handles on *Session.
type SimRun struct {
	Result  *Result
	Profile *Profile
	Monitor *websim.Monitor
	Server  *websim.Server
	// VirtualElapsed is how much simulated time the experiment spanned.
	VirtualElapsed time.Duration
}

// RunSimulated executes a full three-stage MFC experiment in simulation.
//
// Deprecated: use Run with a SimTarget; RunSimulated is a thin shim over
// it (proven equivalent by facade_test.go).
func RunSimulated(t SimTarget, cfg Config) (*Result, error) {
	run, err := Run(context.Background(), t, cfg)
	if err != nil {
		return nil, err
	}
	return run.Result, nil
}

// RunSimulatedDetailed is RunSimulated returning the simulation handles.
//
// Deprecated: use Run with a SimTarget, which exposes the same handles
// on *Session.
func RunSimulatedDetailed(t SimTarget, cfg Config) (*SimRun, error) {
	run, err := Run(context.Background(), t, cfg)
	if err != nil {
		return nil, err
	}
	return &SimRun{
		Result:         run.Result,
		Profile:        run.Profile,
		Monitor:        run.Monitor,
		Server:         run.Server,
		VirtualElapsed: run.VirtualElapsed,
	}, nil
}

// RunSimulatedStage runs a single stage (used by experiments that only need
// one request category, e.g. the §5 population studies run Base only for
// Figure 7).
//
// Deprecated: use Run with WithStage.
func RunSimulatedStage(t SimTarget, cfg Config, stage Stage) (*StageResult, *SimRun, error) {
	run, err := Run(context.Background(), t, cfg, WithStage(stage))
	if err != nil {
		return nil, nil, err
	}
	sr := run.Result.Stages[0]
	return sr, &SimRun{
		Result:         run.Result,
		Profile:        run.Profile,
		Monitor:        run.Monitor,
		Server:         run.Server,
		VirtualElapsed: run.VirtualElapsed,
	}, nil
}
