package mfc

import (
	"context"
	"fmt"
	"time"

	"mfc/internal/content"
	"mfc/internal/core"
	"mfc/internal/labtarget"
	"mfc/internal/websim"
)

// Target is where an MFC experiment runs. The three implementations cover
// the paper's deployments:
//
//   - SimTarget: a discrete-event model of a web installation, virtual
//     time, deterministic in (target, Config).
//   - LabTarget: a real instrumented HTTP server started in this process,
//     profiled over loopback by an in-process goroutine crowd (§3's lab
//     setting).
//   - LiveTarget: any reachable HTTP server, with the crowd either
//     in-process goroutines or remote UDP-controlled agents (§4's
//     wide-area deployment).
//
// Each target binds a core.Platform plus the profiling fetcher the crawl
// stage needs; Run drives the same coordinator over all of them.
type Target interface {
	// open binds the target and returns the run binding, which owns
	// platform-specific setup/teardown; Run owns the experiment itself.
	open(ctx context.Context, cfg Config, ro *runOptions) (*binding, error)
}

// binding is one bound target: everything Run needs to profile it and
// drive the coordinator, plus the hooks to tear the binding down.
type binding struct {
	platform core.Platform
	fetcher  content.Fetcher
	host     string // Result.Target label (site host or URL)
	base     string // crawl entry path
	crawl    content.CrawlConfig
	// crawlTimeout bounds the profiling stage (0 = none). Real-network
	// targets set it so a dripping server cannot hang the crawl forever.
	crawlTimeout time.Duration

	// execute runs the coordinator body on the platform's execution
	// substrate: inside a simulated process for SimTarget (virtual time
	// advances around it), directly on the calling goroutine for lab and
	// live targets.
	execute func(body func())
	// finish copies platform-specific handles onto the Session.
	finish func(r *Session)
	// close releases sockets and servers; always called, even on error.
	close func()
}

// runOptions collects RunOption state.
type runOptions struct {
	observer Observer
	stage    *Stage
}

// RunOption customizes one Run call.
type RunOption func(*runOptions)

// WithObserver attaches a typed event observer to the run: StageStarted,
// EpochCompleted, MeasurersReserved, CheckPhaseEntered and the terminal
// ExperimentFinished arrive synchronously on the coordinator's goroutine,
// in execution order. Multiple observers compose in registration order.
func WithObserver(o Observer) RunOption {
	return func(ro *runOptions) { ro.addObserver(o) }
}

// WithStage restricts the run to a single request category instead of the
// standard three-stage sequence — the single-category mode the §5
// population studies and the campaign engine use.
func WithStage(s Stage) RunOption {
	return func(ro *runOptions) { ro.stage = &s }
}

func (ro *runOptions) addObserver(o Observer) {
	if o == nil {
		return
	}
	if prev := ro.observer; prev != nil {
		ro.observer = func(ev Event) { prev(ev); o(ev) }
	} else {
		ro.observer = o
	}
}

// Session is the outcome of one Run call: the experiment result, the
// profiling-stage outcome, and whatever handles the target kind exposes
// for cooperative (§2.3) resource attribution.
type Session struct {
	// Result is the experiment outcome; on a canceled run it is the
	// partial result with the interrupted stage tagged VerdictAborted.
	Result *Result
	// Profile is the profiling-stage outcome for the target.
	Profile *Profile

	// URL is the target's reachable address (LabTarget and LiveTarget).
	URL string

	// Server and Monitor are the simulation handles (SimTarget only): the
	// simulated installation and its atop-style resource monitor.
	Server  *websim.Server
	Monitor *websim.Monitor
	// VirtualElapsed is how much simulated time the experiment spanned
	// (SimTarget only).
	VirtualElapsed time.Duration

	// Lab is the in-process instrumented server (LabTarget only).
	Lab *labtarget.Server
}

// Run executes a full MFC experiment against a target: profile it (the
// §2.2.1 crawl), then drive the staged crowd ramp over the target's
// platform. The same call works for simulated, lab and live targets.
//
// ctx cancellation is honored at epoch boundaries: a canceled run returns
// the partial *Session — its Result's interrupted stage tagged
// VerdictAborted — together with ctx's error, so long campaigns and live
// runs abort cleanly without losing what was measured.
func Run(ctx context.Context, t Target, cfg Config, opts ...RunOption) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ro := &runOptions{}
	for _, opt := range opts {
		opt(ro)
	}
	s, err := t.open(ctx, cfg, ro)
	if err != nil {
		return nil, err
	}
	defer s.close()

	// Profiling stage. The crawl precedes the experiment and its cost is
	// not part of any reported measurement (§2.2.1).
	crawlCtx := ctx
	if s.crawlTimeout > 0 {
		var cancel context.CancelFunc
		crawlCtx, cancel = context.WithTimeout(ctx, s.crawlTimeout)
		defer cancel()
	}
	prof, err := content.Crawl(crawlCtx, s.fetcher, s.host, s.base, s.crawl)
	if err != nil {
		return nil, fmt.Errorf("mfc: profiling target: %w", err)
	}

	run := &Session{Profile: prof}
	coord := core.New(s.platform, cfg, core.WithObserver(ro.observer))
	var expErr error
	s.execute(func() {
		if ro.stage != nil {
			run.Result, expErr = coord.RunSingleStage(ctx, s.host, *ro.stage, prof)
		} else {
			run.Result, expErr = coord.RunExperiment(ctx, s.host, prof)
		}
	})
	if s.finish != nil {
		s.finish(run)
	}
	if expErr != nil && run.Result == nil {
		return nil, expErr
	}
	// A canceled run surfaces both the partial result and ctx's error.
	return run, expErr
}
