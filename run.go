package mfc

import (
	"context"
	"fmt"
	"time"

	"mfc/internal/content"
	"mfc/internal/core"
	"mfc/internal/netsim"
	"mfc/internal/websim"
)

// SimTarget describes a simulated experiment: the server model, its
// content, background traffic, and the client population.
type SimTarget struct {
	// Server is the installation under test (use a Preset* or hand-build).
	Server ServerConfig
	// Site is the hosted content (required).
	Site *Site
	// Background is the non-MFC workload during the experiment (zero Rate
	// disables it).
	Background BackgroundConfig
	// Clients is the number of simulated PlanetLab clients (default 65,
	// the paper's validation population). Ignored when ClientSpecs is set.
	Clients int
	// LAN places the clients on the target's LAN (§3 lab setting) instead
	// of the wide area.
	LAN bool
	// ClientSpecs overrides the generated client population entirely.
	ClientSpecs []core.SimClientSpec
	// Seed drives every random choice (default 1). The same SimTarget and
	// Config always produce the same Result.
	Seed int64
	// CommandLoss and PollLoss are UDP control-message loss probabilities.
	CommandLoss float64
	PollLoss    float64
	// Logf receives coordinator progress lines (nil = silent).
	Logf func(string, ...any)
}

// SimRun is the outcome of RunSimulatedDetailed: the result plus handles
// into the simulation for resource attribution (the lab-validation
// experiments read the monitor the way the paper reads atop).
type SimRun struct {
	Result  *Result
	Profile *Profile
	Monitor *websim.Monitor
	Server  *websim.Server
	// VirtualElapsed is how much simulated time the experiment spanned.
	VirtualElapsed time.Duration
}

// RunSimulated executes a full three-stage MFC experiment in simulation.
func RunSimulated(t SimTarget, cfg Config) (*Result, error) {
	run, err := RunSimulatedDetailed(t, cfg)
	if err != nil {
		return nil, err
	}
	return run.Result, nil
}

// RunSimulatedDetailed is RunSimulated returning the simulation handles.
func RunSimulatedDetailed(t SimTarget, cfg Config) (*SimRun, error) {
	if t.Site == nil {
		return nil, fmt.Errorf("mfc: SimTarget.Site is required")
	}
	seed := t.Seed
	if seed == 0 {
		seed = 1
	}
	env := netsim.NewEnv(seed)
	server := websim.NewServer(env, t.Server, t.Site)
	server.EnableAccessLog()

	specs := t.ClientSpecs
	if specs == nil {
		n := t.Clients
		if n <= 0 {
			n = 65
		}
		if t.LAN {
			specs = core.LANSpecs(env, n)
		} else {
			specs = core.PlanetLabSpecs(env, n)
		}
	}
	plat := core.NewSimPlatform(env, server, specs)
	plat.CommandLoss = t.CommandLoss
	plat.PollLoss = t.PollLoss

	// Profile the target. The crawl runs against the site model directly:
	// the paper's profiling step precedes the MFC run and its cost is not
	// part of any reported measurement.
	prof, err := content.Crawl(context.Background(), content.SiteFetcher{Site: t.Site},
		t.Site.Host, t.Site.Base, content.CrawlConfig{})
	if err != nil {
		return nil, fmt.Errorf("mfc: profiling target: %w", err)
	}

	bg := websim.StartBackground(env, server, t.Background)
	mon := websim.NewMonitor(env, server, time.Second)

	run := &SimRun{Profile: prof, Monitor: mon, Server: server}
	var expErr error
	env.Go("coordinator", func(p *netsim.Proc) {
		plat.Bind(p)
		coord := core.NewCoordinator(plat, cfg, t.Logf)
		run.Result, expErr = coord.RunExperiment(t.Site.Host, prof)
		bg.Stop()
		mon.Stop()
	})
	env.Run(0)
	run.VirtualElapsed = env.Now()
	if expErr != nil {
		return nil, expErr
	}
	return run, nil
}

// RunSimulatedStage runs a single stage (used by experiments that only need
// one request category, e.g. the §5 population studies run Base only for
// Figure 7).
func RunSimulatedStage(t SimTarget, cfg Config, stage Stage) (*StageResult, *SimRun, error) {
	if t.Site == nil {
		return nil, nil, fmt.Errorf("mfc: SimTarget.Site is required")
	}
	seed := t.Seed
	if seed == 0 {
		seed = 1
	}
	env := netsim.NewEnv(seed)
	server := websim.NewServer(env, t.Server, t.Site)
	server.EnableAccessLog()

	specs := t.ClientSpecs
	if specs == nil {
		n := t.Clients
		if n <= 0 {
			n = 65
		}
		if t.LAN {
			specs = core.LANSpecs(env, n)
		} else {
			specs = core.PlanetLabSpecs(env, n)
		}
	}
	plat := core.NewSimPlatform(env, server, specs)
	plat.CommandLoss = t.CommandLoss
	plat.PollLoss = t.PollLoss

	prof, err := content.Crawl(context.Background(), content.SiteFetcher{Site: t.Site},
		t.Site.Host, t.Site.Base, content.CrawlConfig{})
	if err != nil {
		return nil, nil, fmt.Errorf("mfc: profiling target: %w", err)
	}

	bg := websim.StartBackground(env, server, t.Background)
	mon := websim.NewMonitor(env, server, time.Second)

	run := &SimRun{Profile: prof, Monitor: mon, Server: server}
	var sr *StageResult
	var regErr error
	env.Go("coordinator", func(p *netsim.Proc) {
		plat.Bind(p)
		coord := core.NewCoordinator(plat, cfg, t.Logf)
		if err := coord.Register(); err != nil {
			regErr = err
		} else {
			sr = coord.RunStage(stage, prof)
		}
		bg.Stop()
		mon.Stop()
	})
	env.Run(0)
	run.VirtualElapsed = env.Now()
	if regErr != nil {
		return nil, nil, regErr
	}
	run.Result = &Result{Target: t.Site.Host, Stages: []*core.StageResult{sr}}
	return sr, run, nil
}
