GO ?= go

.PHONY: build test race vet fmt-check bench bench-short bench-check experiments fuzz campaign-smoke campaign-dist-smoke chaos-smoke metrics-smoke serve-smoke analyze-smoke trace-smoke api apicheck ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage on the packages that own concurrency: the worker pool, the
# DES kernel it drives, the coordinator (event stream + cancellation), and
# the experiments/campaign layers that fan out on it.
race:
	$(GO) test -race ./internal/runner ./internal/netsim ./internal/core ./internal/scenario ./internal/experiments ./internal/campaign ./internal/campaign/dist ./internal/campaign/dist/lease ./internal/campaign/serve ./internal/analyze ./internal/obs

# API-surface lock: api.txt is the checked-in `go doc -all` of the public
# package. `make api` regenerates it after an intentional API change;
# `make apicheck` fails when the surface drifted without the file being
# updated, so PRs cannot silently break the public contract.
api:
	$(GO) doc -all . > api.txt

apicheck:
	@$(GO) doc -all . > /tmp/api-current.txt; \
	if ! diff -u api.txt /tmp/api-current.txt; then \
		echo "public API surface drifted: run 'make api' and review the diff"; exit 1; fi

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full figure/table benchmark sweep -> BENCH_results.json (tracked across
# PRs; see EXPERIMENTS.md for expected values).
bench:
	$(GO) run ./cmd/mfc-bench -out BENCH_results.json

bench-short:
	$(GO) run ./cmd/mfc-bench -short -out BENCH_results.json

# Trend check: rerun the fast benchmarks and fail on >25% regression in
# ns/op or allocs/op against the committed baseline.
bench-check:
	$(GO) run ./cmd/mfc-bench -short -out /tmp/bench-fresh.json \
		-against BENCH_results.json -tolerance 0.25

experiments:
	$(GO) run ./cmd/mfc-experiments

# Short coverage-guided fuzz runs over the hostile-input parsers (the
# checked-in seed corpora also run as plain unit tests under `make test`).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzShardTail$$' -fuzztime 10s ./internal/campaign
	$(GO) test -run '^$$' -fuzz '^FuzzManifest$$' -fuzztime 10s ./internal/campaign
	$(GO) test -run '^$$' -fuzz '^FuzzLease$$' -fuzztime 10s ./internal/campaign/dist/lease
	$(GO) test -run '^$$' -fuzz '^FuzzScenarioConfig$$' -fuzztime 10s ./internal/scenario
	$(GO) test -run '^$$' -fuzz '^FuzzAnalyzeShard$$' -fuzztime 10s ./internal/analyze
	$(GO) test -run '^$$' -fuzz '^FuzzSanitizeMetricName$$' -fuzztime 10s ./internal/obs
	$(GO) test -run '^$$' -fuzz '^FuzzSanitizeLabelName$$' -fuzztime 10s ./internal/obs
	$(GO) test -run '^$$' -fuzz '^FuzzSpanIngest$$' -fuzztime 10s ./internal/campaign/serve

# Kill + resume determinism check, the same sequence CI runs.
campaign-smoke:
	$(GO) build -o /tmp/mfc-campaign ./cmd/mfc-campaign
	rm -rf /tmp/camp-clean /tmp/camp-killed
	/tmp/mfc-campaign plan -dir /tmp/camp-clean -bands rank-1K-10K -stages base,query -sites 40 -seed 7
	/tmp/mfc-campaign run -dir /tmp/camp-clean -quiet
	/tmp/mfc-campaign report -dir /tmp/camp-clean > /tmp/report-clean.txt
	/tmp/mfc-campaign plan -dir /tmp/camp-killed -bands rank-1K-10K -stages base,query -sites 40 -seed 7
	/tmp/mfc-campaign run -dir /tmp/camp-killed -halt-after 15 -quiet
	/tmp/mfc-campaign resume -dir /tmp/camp-killed -quiet
	/tmp/mfc-campaign report -dir /tmp/camp-killed > /tmp/report-killed.txt
	diff /tmp/report-clean.txt /tmp/report-killed.txt
	@echo "kill+resume report is byte-identical"

# Chaos smoke, the same sequence CI runs: a scenario-swept campaign (clean
# vs sustained loss vs mid-measurement link flaps) is killed mid-run —
# inside the scenario cells, where fault timers are armed — resumed, and
# its report must be byte-identical to the uninterrupted run's.
chaos-smoke:
	$(GO) build -o /tmp/mfc-campaign ./cmd/mfc-campaign
	rm -rf /tmp/camp-chaos-clean /tmp/camp-chaos-killed
	/tmp/mfc-campaign plan -dir /tmp/camp-chaos-clean -bands rank-1K-10K -stages base -scenarios clean,lossy,flaky-link -sites 15 -seed 7
	/tmp/mfc-campaign run -dir /tmp/camp-chaos-clean -quiet
	/tmp/mfc-campaign report -dir /tmp/camp-chaos-clean > /tmp/report-chaos-clean.txt
	/tmp/mfc-campaign plan -dir /tmp/camp-chaos-killed -bands rank-1K-10K -stages base -scenarios clean,lossy,flaky-link -sites 15 -seed 7
	/tmp/mfc-campaign run -dir /tmp/camp-chaos-killed -halt-after 20 -quiet
	/tmp/mfc-campaign resume -dir /tmp/camp-chaos-killed -quiet
	/tmp/mfc-campaign report -dir /tmp/camp-chaos-killed > /tmp/report-chaos-killed.txt
	diff /tmp/report-chaos-clean.txt /tmp/report-chaos-killed.txt
	@echo "chaos kill+resume report is byte-identical"

# Distributed smoke, the same sequence CI runs: 3 `work` processes share
# one plan over a shared dir, one is killed -9 as soon as records exist
# (mid-shard, holding a lease), the survivors take its shards over, and
# the merged report must be byte-identical to the single-process run.
campaign-dist-smoke:
	$(GO) build -o /tmp/mfc-campaign ./cmd/mfc-campaign
	rm -rf /tmp/camp-dist-base /tmp/camp-dist-shared
	/tmp/mfc-campaign plan -dir /tmp/camp-dist-base -bands rank-1K-10K -stages base,query -sites 100 -seed 11 -shard-jobs 16
	/tmp/mfc-campaign run -dir /tmp/camp-dist-base -quiet
	/tmp/mfc-campaign report -dir /tmp/camp-dist-base > /tmp/camp-dist-base.txt
	/tmp/mfc-campaign plan -dir /tmp/camp-dist-shared -bands rank-1K-10K -stages base,query -sites 100 -seed 11 -shard-jobs 16
	@set -e; \
	/tmp/mfc-campaign work -dir /tmp/camp-dist-shared -owner w1 -quiet & W1=$$!; \
	/tmp/mfc-campaign work -dir /tmp/camp-dist-shared -owner w2 -quiet & W2=$$!; \
	/tmp/mfc-campaign work -dir /tmp/camp-dist-shared -owner w3 -quiet & W3=$$!; \
	until [ -n "$$(ls -A /tmp/camp-dist-shared/shards 2>/dev/null)" ]; do sleep 0.05; done; \
	kill -9 $$W1 2>/dev/null || true; \
	wait $$W2; wait $$W3; wait $$W1 || true
	/tmp/mfc-campaign work -dir /tmp/camp-dist-shared -owner rescuer -quiet
	/tmp/mfc-campaign report -dir /tmp/camp-dist-shared > /tmp/camp-dist-shared.txt
	diff /tmp/camp-dist-base.txt /tmp/camp-dist-shared.txt
	@echo "multi-worker kill -9 + takeover report is byte-identical"

# Observability smoke, the same sequence CI runs: three distributed
# workers share a plan, one serves the live dashboard with a post-campaign
# hold; once /progress reports the whole store complete, the /metrics
# store counters must equal the totals in the merged report's header.
metrics-smoke:
	$(GO) build -o /tmp/mfc-campaign ./cmd/mfc-campaign
	rm -rf /tmp/camp-metrics /tmp/camp-metrics-w3.log
	/tmp/mfc-campaign plan -dir /tmp/camp-metrics -bands rank-1K-10K -stages base,query -sites 60 -seed 13 -shard-jobs 16
	@set -e; \
	/tmp/mfc-campaign work -dir /tmp/camp-metrics -owner w1 -quiet & W1=$$!; \
	/tmp/mfc-campaign work -dir /tmp/camp-metrics -owner w2 -quiet & W2=$$!; \
	/tmp/mfc-campaign work -dir /tmp/camp-metrics -owner w3 -quiet \
		-metrics 127.0.0.1:0 -metrics-hold 120s 2>/tmp/camp-metrics-w3.log & W3=$$!; \
	addr=""; \
	until [ -n "$$addr" ]; do \
		addr=$$(sed -n 's,^serving metrics/dashboard on http://\([^/]*\)/.*,\1,p' /tmp/camp-metrics-w3.log 2>/dev/null); \
		sleep 0.05; \
	done; \
	wait $$W1; wait $$W2; \
	for i in $$(seq 1 200); do \
		curl -s "http://$$addr/progress" | grep -q '"store_done": 120' && break; \
		sleep 0.1; \
	done; \
	curl -s "http://$$addr/progress" | grep -q '"store_done": 120' || \
		{ echo "store never reached 120 done jobs"; curl -s "http://$$addr/progress"; exit 1; }; \
	curl -s "http://$$addr/metrics" > /tmp/camp-metrics.prom; \
	curl -s -X POST "http://$$addr/quit" > /dev/null; wait $$W3; \
	/tmp/mfc-campaign report -dir /tmp/camp-metrics > /tmp/camp-metrics-report.txt; \
	rtotals=$$(sed -n 's/.*= \([0-9]*\) jobs, \([0-9]*\) done.*/\1 \2/p' /tmp/camp-metrics-report.txt | head -1); \
	rtotal=$$(echo $$rtotals | cut -d' ' -f1); rdone=$$(echo $$rtotals | cut -d' ' -f2); \
	mtotal=$$(awk '$$1=="mfc_campaign_store_jobs_total"{print int($$2)}' /tmp/camp-metrics.prom); \
	mdone=$$(awk '$$1=="mfc_campaign_store_jobs_done"{print int($$2)}' /tmp/camp-metrics.prom); \
	[ -n "$$mtotal" ] && [ "$$mtotal" = "$$rtotal" ] && [ "$$mdone" = "$$rdone" ] || \
		{ echo "metrics drift: /metrics store $$mdone/$$mtotal vs report $$rdone/$$rtotal"; exit 1; }; \
	echo "scraped /metrics store counters ($$mdone/$$mtotal) match the report header"

# Networked smoke, the same sequence CI runs: a control plane owns the
# plan and the store, three workers join it over plain HTTP (no shared
# filesystem — they know only the address), one is killed -9 mid-shard;
# after the grant TTL its shard is re-granted to a survivor under a
# bumped fence token, and the merged report must be byte-identical to
# the single-process run.
serve-smoke:
	$(GO) build -o /tmp/mfc-campaign ./cmd/mfc-campaign
	rm -rf /tmp/camp-serve-base /tmp/camp-serve /tmp/camp-serve.log
	/tmp/mfc-campaign plan -dir /tmp/camp-serve-base -bands rank-1K-10K -stages base,query -sites 100 -seed 17 -shard-jobs 16
	/tmp/mfc-campaign run -dir /tmp/camp-serve-base -quiet
	/tmp/mfc-campaign report -dir /tmp/camp-serve-base > /tmp/camp-serve-base.txt
	/tmp/mfc-campaign plan -dir /tmp/camp-serve -bands rank-1K-10K -stages base,query -sites 100 -seed 17 -shard-jobs 16
	@set -e; \
	/tmp/mfc-campaign serve -dir /tmp/camp-serve -listen 127.0.0.1:0 -ttl 2s 2>/tmp/camp-serve.log & SRV=$$!; \
	addr=""; \
	until [ -n "$$addr" ]; do \
		addr=$$(sed -n 's,^campaign control plane on http://\([^/]*\)/.*,\1,p' /tmp/camp-serve.log 2>/dev/null); \
		sleep 0.05; \
	done; \
	/tmp/mfc-campaign work -join $$addr -owner w1 -quiet & W1=$$!; \
	/tmp/mfc-campaign work -join $$addr -owner w2 -quiet & W2=$$!; \
	/tmp/mfc-campaign work -join $$addr -owner w3 -quiet & W3=$$!; \
	until [ -n "$$(ls -A /tmp/camp-serve/shards 2>/dev/null)" ]; do sleep 0.05; done; \
	kill -9 $$W1 2>/dev/null || true; \
	wait $$W2; wait $$W3; wait $$W1 || true; \
	curl -s "http://$$addr/api/status" | grep -q '"complete":true' || \
		{ echo "control plane does not report completion"; curl -s "http://$$addr/api/status"; exit 1; }; \
	curl -s -X POST "http://$$addr/quit" > /dev/null; wait $$SRV
	/tmp/mfc-campaign report -dir /tmp/camp-serve > /tmp/camp-serve.txt
	diff /tmp/camp-serve-base.txt /tmp/camp-serve.txt
	@echo "networked kill -9 + re-grant report is byte-identical"

# Fleet-trace smoke, the same sequence CI runs: a control plane with a
# tight TTL and straggler threshold, three joined workers shipping
# wall-clock spans over HTTP, one killed -9 mid-shard. The straggler
# gauge must fire while the orphaned shard outlives k x the median
# completed-shard duration, the campaign must still complete, and the
# merged Chrome trace must carry all three workers' process tracks.
trace-smoke:
	$(GO) build -o /tmp/mfc-campaign ./cmd/mfc-campaign
	rm -rf /tmp/camp-trace /tmp/camp-trace.log /tmp/camp-trace.trace.json
	/tmp/mfc-campaign plan -dir /tmp/camp-trace -bands rank-1K-10K -stages base,query -sites 100 -seed 19 -shard-jobs 8
	@set -e; \
	/tmp/mfc-campaign serve -dir /tmp/camp-trace -listen 127.0.0.1:0 -ttl 2s -straggler 2 2>/tmp/camp-trace.log & SRV=$$!; \
	addr=""; \
	until [ -n "$$addr" ]; do \
		addr=$$(sed -n 's,^campaign control plane on http://\([^/]*\)/.*,\1,p' /tmp/camp-trace.log 2>/dev/null); \
		sleep 0.05; \
	done; \
	/tmp/mfc-campaign work -join $$addr -owner w1 -quiet & W1=$$!; \
	/tmp/mfc-campaign work -join $$addr -owner w2 -quiet & W2=$$!; \
	/tmp/mfc-campaign work -join $$addr -owner w3 -quiet & W3=$$!; \
	until [ -s /tmp/camp-trace/spans/spans-w1.jsonl ]; do sleep 0.02; done; \
	kill -9 $$W1 2>/dev/null || true; \
	straggler=0; \
	for i in $$(seq 1 600); do \
		n=$$(curl -s "http://$$addr/metrics" | awk '$$1=="mfc_campaign_straggler_shards"{print int($$2)}'); \
		if [ -n "$$n" ] && [ "$$n" -ge 1 ]; then straggler=$$n; break; fi; \
		sleep 0.05; \
	done; \
	[ "$$straggler" -ge 1 ] || \
		{ echo "straggler gauge never fired after kill -9"; curl -s "http://$$addr/fleet.json"; exit 1; }; \
	wait $$W2; wait $$W3; wait $$W1 || true; \
	curl -s "http://$$addr/api/status" | grep -q '"complete":true' || \
		{ echo "control plane does not report completion"; curl -s "http://$$addr/api/status"; exit 1; }; \
	curl -s -X POST "http://$$addr/quit" > /dev/null; wait $$SRV
	/tmp/mfc-campaign trace -dir /tmp/camp-trace -out /tmp/camp-trace.trace.json > /tmp/camp-trace.summary
	grep -q "from 3 workers" /tmp/camp-trace.summary
	grep -q '"traceEvents"' /tmp/camp-trace.trace.json
	@test "$$(grep -c '"process_name"' /tmp/camp-trace.trace.json)" = "3" || \
		{ echo "merged trace does not carry exactly 3 worker tracks"; exit 1; }
	@echo "kill -9 fleet trace merges all three workers and the straggler gauge fired"

# Analytics smoke, the same sequence CI runs: the deep analyze read over
# the serve-smoke stores — the 3-worker kill -9 + re-grant store must
# produce a byte-identical analytics document to the single-process one.
analyze-smoke: serve-smoke
	/tmp/mfc-campaign analyze -dir /tmp/camp-serve-base -json > /tmp/camp-serve-base.analyze.json
	/tmp/mfc-campaign analyze -dir /tmp/camp-serve -json > /tmp/camp-serve.analyze.json
	diff /tmp/camp-serve-base.analyze.json /tmp/camp-serve.analyze.json
	@echo "kill -9 store analytics document is byte-identical"

ci: build vet fmt-check apicheck test race chaos-smoke campaign-dist-smoke metrics-smoke serve-smoke analyze-smoke trace-smoke
