GO ?= go

.PHONY: build test race vet fmt-check bench bench-short experiments ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage on the packages that own concurrency: the worker pool, the
# DES kernel it drives, and the experiments layer that fans out on it.
race:
	$(GO) test -race ./internal/runner ./internal/netsim ./internal/experiments

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full figure/table benchmark sweep -> BENCH_results.json (tracked across
# PRs; see EXPERIMENTS.md for expected values).
bench:
	$(GO) run ./cmd/mfc-bench -out BENCH_results.json

bench-short:
	$(GO) run ./cmd/mfc-bench -short -out BENCH_results.json

experiments:
	$(GO) run ./cmd/mfc-experiments

ci: build vet fmt-check test race
