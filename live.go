package mfc

import (
	"context"
	"fmt"
	"net/url"
	"time"

	"mfc/internal/content"
	"mfc/internal/liveplat"
)

// LiveTarget profiles a real, already-running HTTP server. Two crowd
// deployments are supported, mirroring the paper's:
//
//   - In-process (Listen empty): Clients goroutines in this process, each
//     with its own net/http transport — real requests, no wide-area
//     diversity. Right for servers you operate, over a LAN or loopback.
//   - Distributed (Listen set): remote mfc-client agents driven over the
//     paper's UDP control protocol (internal/wire) register with this
//     process; the experiment starts once MinAgents have arrived.
//
// Only profile servers you operate or have permission to test.
type LiveTarget struct {
	// URL is the absolute URL of the server to profile (required). Its
	// path component is the profiling crawl's entry page (default "/").
	URL string

	// Clients is the in-process goroutine crowd size (default 50). Used
	// when Listen is empty.
	Clients int

	// Listen, when set, is the UDP address to accept remote agent
	// registrations on — the distributed deployment.
	Listen string
	// MinAgents is the registration quorum (default 50, the paper's
	// MinClients rule); the run aborts if fewer register in RegisterWait
	// (default 60s).
	MinAgents    int
	RegisterWait time.Duration

	// CrawlMax bounds the profiling crawl (default 200 objects) and
	// CrawlTimeout its wall-clock budget (default 5m) — a live server that
	// drips bytes must not hang the profiling stage forever.
	CrawlMax     int
	CrawlTimeout time.Duration

	// Logf receives platform-level progress (agent registrations). The
	// experiment itself reports through the typed event stream.
	Logf func(string, ...any)
}

// open implements Target.
func (t LiveTarget) open(ctx context.Context, cfg Config, _ *runOptions) (*binding, error) {
	if t.URL == "" {
		return nil, fmt.Errorf("mfc: LiveTarget.URL is required")
	}
	parsed, err := url.Parse(t.URL)
	if err != nil {
		return nil, fmt.Errorf("mfc: parsing LiveTarget.URL: %w", err)
	}
	base := parsed.Path
	if base == "" {
		base = "/"
	}
	fetcher, err := liveplat.NewHTTPFetcher(t.URL)
	if err != nil {
		return nil, err
	}
	crawlMax := t.CrawlMax
	if crawlMax <= 0 {
		crawlMax = 200
	}

	crawlTimeout := t.CrawlTimeout
	if crawlTimeout <= 0 {
		crawlTimeout = 5 * time.Minute
	}
	s := &binding{
		fetcher:      fetcher,
		host:         t.URL,
		base:         base,
		crawl:        content.CrawlConfig{MaxObjects: crawlMax},
		crawlTimeout: crawlTimeout,
		execute:      func(body func()) { body() },
		finish:       func(r *Session) { r.URL = t.URL },
		close:        func() {},
	}

	if t.Listen == "" {
		clients := t.Clients
		if clients <= 0 {
			clients = 50
		}
		plat, err := liveplat.NewInProcessPlatform(t.URL, clients)
		if err != nil {
			return nil, err
		}
		s.platform = plat
		return s, nil
	}

	// Distributed deployment: wait for the agent quorum before profiling.
	plat, err := liveplat.NewUDPPlatform(t.Listen, t.URL, t.Logf)
	if err != nil {
		return nil, err
	}
	if t.Logf != nil {
		// Report the bound address: with a ":0" listen spec this is the
		// only place the actual registration port is known.
		t.Logf("listening for agent registrations on %s", plat.Addr())
	}
	minAgents := t.MinAgents
	if minAgents <= 0 {
		minAgents = 50
	}
	wait := t.RegisterWait
	if wait <= 0 {
		wait = 60 * time.Second
	}
	if got := plat.WaitForAgents(ctx, minAgents, time.Now().Add(wait)); got < minAgents {
		plat.Close()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mfc: canceled waiting for agents (%d of %d registered): %w", got, minAgents, err)
		}
		return nil, fmt.Errorf("mfc: only %d agents registered (need %d) within %v", got, minAgents, wait)
	}
	s.platform = plat
	s.close = func() { plat.Close() }
	return s, nil
}
